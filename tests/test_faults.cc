/**
 * @file
 * Chaos-layer tests (coe/faults.h): fault-kind name tables, schedule
 * and policy validation, the strict JSONL fault-schedule loader and
 * its corruption matrix (every malformed file dies with a FatalError
 * naming the offending line), fault semantics on a live cluster
 * (crash conservation, retry recovery, hedge accounting), the -j 1 /
 * -j N bit-identity of a faulted run, and the zero-fault golden lock:
 * an empty-but-present schedule plus default policy knobs must be
 * bit-identical to a cluster that never heard of the chaos layer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/faults.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** RAII temp path that is removed on scope exit. */
struct TempFile
{
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

/** The 4-node Zipf cluster anchor shared with test_cluster.cc. */
ClusterConfig
clusterConfig(int nodes)
{
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 400;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.seed = 11;
    return cfg;
}

std::shared_ptr<const std::vector<FaultEvent>>
schedule(std::vector<FaultEvent> events)
{
    return std::make_shared<const std::vector<FaultEvent>>(
        std::move(events));
}

/**
 * Write @p text verbatim, load it, and expect a FatalError whose
 * message contains @p fragment (typically "line N"), so corruption
 * reports point at the offending line, not just "bad file".
 */
void
expectLoadDies(const std::string &text, const std::string &fragment)
{
    TempFile f("corrupt_faults.jsonl");
    {
        std::ofstream out(f.path);
        out << text;
    }
    try {
        loadFaultSchedule(f.path);
        FAIL() << "expected FatalError containing '" << fragment
               << "'";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(fragment),
                  std::string::npos)
            << "error was: " << e.what();
    }
}

void
expectStreamBitIdentical(const StreamMetrics &a, const StreamMetrics &b)
{
    EXPECT_DOUBLE_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_DOUBLE_EQ(a.maxLatencySeconds, b.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                     b.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.meanBatchOccupancy, b.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.hedged, b.hedged);
    EXPECT_EQ(a.hedgeWon, b.hedgeWon);
    EXPECT_EQ(a.batches, b.batches);
}

} // namespace

// ------------------------------------------------------- name tables

TEST(FaultKinds, NamesRoundTrip)
{
    EXPECT_EQ(faultKindFromName("crash"), FaultKind::NodeCrash);
    EXPECT_EQ(faultKindFromName("dma-stall"), FaultKind::DmaStall);
    EXPECT_EQ(faultKindFromName("straggler"), FaultKind::Straggler);
    EXPECT_EQ(faultKindFromName("flaky"), FaultKind::FlakyNode);
    EXPECT_THROW(faultKindFromName("meteor"), sim::FatalError);
    for (FaultKind k :
         {FaultKind::NodeCrash, FaultKind::DmaStall,
          FaultKind::Straggler, FaultKind::FlakyNode})
        EXPECT_EQ(faultKindFromName(faultKindName(k)), k);
}

// -------------------------------------------------------- validation

TEST(FaultValidation, ScheduleRejectsMalformedEvents)
{
    auto one = [](FaultEvent e) { return std::vector<FaultEvent>{e}; };
    FaultEvent ok;
    ok.atSeconds = 1.0;
    ok.kind = FaultKind::Straggler;
    ok.factor = 2.0;
    validateFaultSchedule(one(ok), 4); // sane event passes

    FaultEvent bad = ok;
    bad.atSeconds = -1.0;
    EXPECT_THROW(validateFaultSchedule(one(bad), 4), sim::FatalError);

    bad = ok;
    bad.node = 4; // == nodes
    EXPECT_THROW(validateFaultSchedule(one(bad), 4), sim::FatalError);
    validateFaultSchedule(one(bad), 0); // nodes unknown: range skipped

    bad = ok;
    bad.durationSeconds = -0.5;
    EXPECT_THROW(validateFaultSchedule(one(bad), 4), sim::FatalError);

    bad = ok;
    bad.factor = 0.5; // stretch < 1
    EXPECT_THROW(validateFaultSchedule(one(bad), 4), sim::FatalError);

    bad = ok;
    bad.kind = FaultKind::FlakyNode;
    bad.factor = 1.5; // probability > 1
    EXPECT_THROW(validateFaultSchedule(one(bad), 4), sim::FatalError);

    // Out-of-order fire times.
    FaultEvent late = ok, early = ok;
    late.atSeconds = 2.0;
    early.atSeconds = 1.0;
    EXPECT_THROW(validateFaultSchedule({late, early}, 4),
                 sim::FatalError);
}

TEST(FaultValidation, PolicyRejectsContradictoryKnobs)
{
    FaultPolicyConfig ok;
    validateFaultPolicy(ok); // defaults are valid (and inert)

    FaultPolicyConfig bad;
    bad.retryMax = -1;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);

    bad = FaultPolicyConfig{};
    bad.retryBackoffSeconds = -0.1;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);

    bad = FaultPolicyConfig{};
    bad.retryBudget = -2;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);

    bad = FaultPolicyConfig{};
    bad.hedgeThreshold = 0.0;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);

    bad = FaultPolicyConfig{};
    bad.brownoutDepth = -1.0;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);

    bad = FaultPolicyConfig{};
    bad.hedge = true;
    bad.policyTickSeconds = 0.0;
    EXPECT_THROW(validateFaultPolicy(bad), sim::FatalError);
}

// ---------------------------------------------------------- JSONL IO

TEST(FaultScheduleIo, WriteLoadRoundTrips)
{
    std::vector<FaultEvent> events;
    events.push_back({1.25, FaultKind::NodeCrash, 2, 1.0, 30.0});
    events.push_back({2.5, FaultKind::DmaStall, 0, 4.0, 10.0});
    events.push_back({2.5, FaultKind::Straggler, 1, 2.75, 0.0});
    events.push_back({9.0, FaultKind::FlakyNode, 3, 0.35, 5.0});

    TempFile f("roundtrip_faults.jsonl");
    writeFaultSchedule(f.path, events);
    std::vector<FaultEvent> back = loadFaultSchedule(f.path);
    ASSERT_EQ(back.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_DOUBLE_EQ(back[i].atSeconds, events[i].atSeconds);
        EXPECT_EQ(back[i].kind, events[i].kind);
        EXPECT_EQ(back[i].node, events[i].node);
        EXPECT_DOUBLE_EQ(back[i].factor, events[i].factor);
        EXPECT_DOUBLE_EQ(back[i].durationSeconds,
                         events[i].durationSeconds);
    }

    // An empty schedule round-trips too (header only).
    TempFile e("empty_faults.jsonl");
    writeFaultSchedule(e.path, {});
    EXPECT_TRUE(loadFaultSchedule(e.path).empty());
}

TEST(FaultScheduleIo, CorruptionMatrixDiesWithLineNumbers)
{
    const std::string header = "{\"sn40l_faults\":1,\"events\":1}\n";
    const std::string event =
        "{\"at\":1,\"kind\":\"crash\",\"node\":0,\"factor\":1,"
        "\"duration\":0}\n";

    EXPECT_THROW(loadFaultSchedule("/nonexistent/faults.jsonl"),
                 sim::FatalError);
    expectLoadDies("", "empty file");
    expectLoadDies("{\"sn40l_trace\":1}\n" + event, "line 1");
    expectLoadDies("{\"sn40l_faults\":2,\"events\":1}\n" + event,
                   "unsupported fault-schedule version");
    expectLoadDies("{\"sn40l_faults\":1,\"events\":-1}\n",
                   "negative event count");
    // Truncation: the header promises more events than follow.
    expectLoadDies("{\"sn40l_faults\":1,\"events\":2}\n" + event,
                   "truncated after 1 of 2 events");
    // Wrong field order is corruption, not tolerated flexibility.
    expectLoadDies(header +
                       "{\"kind\":\"crash\",\"at\":1,\"node\":0,"
                       "\"factor\":1,\"duration\":0}\n",
                   "line 2");
    expectLoadDies(header + "{\"at\":1,\"kind\":\"meteor\",\"node\":0,"
                            "\"factor\":1,\"duration\":0}\n",
                   "unknown fault kind");
    expectLoadDies(header + "{\"at\":abc,\"kind\":\"crash\","
                            "\"node\":0,\"factor\":1,\"duration\":0}\n",
                   "malformed number");
    expectLoadDies(header +
                       "{\"at\":1,\"kind\":\"crash\",\"node\":0,"
                       "\"factor\":1,\"duration\":0} \n",
                   "trailing characters");
    expectLoadDies(header + event + "garbage\n", "trailing garbage");
    // Out-of-order fire times die on the offending line (3).
    expectLoadDies(
        "{\"sn40l_faults\":1,\"events\":2}\n"
        "{\"at\":5,\"kind\":\"crash\",\"node\":0,\"factor\":1,"
        "\"duration\":0}\n"
        "{\"at\":1,\"kind\":\"crash\",\"node\":1,\"factor\":1,"
        "\"duration\":0}\n",
        "line 3");
    // Semantic range checks fire at load time too.
    expectLoadDies(header + "{\"at\":1,\"kind\":\"straggler\","
                            "\"node\":0,\"factor\":0.5,"
                            "\"duration\":0}\n",
                   "stretch factor");
    expectLoadDies(header + "{\"at\":1,\"kind\":\"flaky\",\"node\":0,"
                            "\"factor\":1.5,\"duration\":0}\n",
                   "failure probability");
}

// ------------------------------------------------- cluster semantics

TEST(FaultCluster, ZeroFaultScheduleIsGoldenIdentical)
{
    // The golden lock: arming an EMPTY schedule with default policy
    // knobs must be bit-identical to a config that never mentions the
    // chaos layer — the no-fault path pays zero cost. Guards every
    // PR 4-7 cluster golden by transitivity.
    ClusterConfig plain = clusterConfig(4);
    plain.placement = PlacementPolicy::ReplicateHotPartitionCold;
    plain.hotExperts = 15;

    ClusterConfig armed = plain;
    armed.faults = schedule({});
    armed.faultPolicy = FaultPolicyConfig{};

    ClusterResult a = ClusterSimulator(plain).run();
    ClusterResult b = ClusterSimulator(armed).run();
    expectStreamBitIdentical(a.stream, b.stream);
    EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
    EXPECT_EQ(b.faultsInjected, 0);
    EXPECT_EQ(b.crashes, 0);
    EXPECT_EQ(b.stream.lost, 0);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_EQ(a.nodes[i].dispatched, b.nodes[i].dispatched);
        EXPECT_EQ(a.nodes[i].completed, b.nodes[i].completed);
    }
}

TEST(FaultCluster, CrashLosesWithoutRetryAndConserves)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.faults = schedule({{2.0, FaultKind::NodeCrash, 1, 1.0, 0.0}});

    ClusterResult r = ClusterSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.faultsInjected, 1);
    EXPECT_EQ(r.crashes, 1);
    // No retry policy: everything displaced by the crash is lost, and
    // the ledger still balances — nothing disappears silently.
    EXPECT_GT(r.stream.lost, 0);
    EXPECT_EQ(r.stream.retried, 0);
    EXPECT_EQ(r.stream.completed + r.stream.shed + r.stream.lost,
              static_cast<std::int64_t>(cfg.node.streamRequests));
}

TEST(FaultCluster, RetryRecoversCrashDisplacedRequests)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.faults = schedule({{2.0, FaultKind::NodeCrash, 1, 1.0, 0.0}});
    cfg.faultPolicy.retryMax = 4;
    cfg.faultPolicy.retryBackoffSeconds = 0.02;

    ClusterResult r = ClusterSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    // A crash displaces to live nodes that are not flaky, so one
    // retry round recovers every displaced request: nothing lost.
    EXPECT_EQ(r.stream.lost, 0);
    EXPECT_GT(r.stream.retried, 0);
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              static_cast<std::int64_t>(cfg.node.streamRequests));
}

TEST(FaultCluster, RetryBudgetCapsClusterWideRetries)
{
    ClusterConfig cfg = clusterConfig(3);
    // A permanently flaky node keeps burning retries; the cluster-wide
    // budget must cap them.
    cfg.faults = schedule({{1.0, FaultKind::FlakyNode, 0, 0.5, 0.0}});
    cfg.faultPolicy.retryMax = 3;
    cfg.faultPolicy.retryBackoffSeconds = 0.01;
    cfg.faultPolicy.retryBudget = 10;

    ClusterResult r = ClusterSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    EXPECT_LE(r.stream.retried, 10);
    EXPECT_EQ(r.stream.completed + r.stream.shed + r.stream.lost,
              static_cast<std::int64_t>(cfg.node.streamRequests));
}

TEST(FaultCluster, HedgeAccountingConservesUnderStraggler)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.node.workload.sloSeconds = 0.5; // hedging needs a deadline
    cfg.faults =
        schedule({{1.0, FaultKind::Straggler, 0, 6.0, 10.0}});
    cfg.faultPolicy.hedge = true;
    cfg.faultPolicy.hedgeThreshold = 0.5;
    cfg.faultPolicy.policyTickSeconds = 0.05;

    ClusterResult r = ClusterSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.stream.hedged, 0);
    EXPECT_GE(r.stream.hedged, r.stream.hedgeWon);
    // Hedge duplicates never double-count: conservation still exact.
    EXPECT_EQ(r.stream.completed + r.stream.shed + r.stream.lost,
              static_cast<std::int64_t>(cfg.node.streamRequests));
}

TEST(FaultCluster, FaultedRunBitIdenticalAcrossThreads)
{
    // The determinism claim of the chaos layer: a faulted, policied
    // run is bit-identical between -j 1 and -j N (events counters
    // differ structurally between the two engines and running means
    // differ in the last ulp, so compare counters and quantiles).
    ClusterConfig cfg = clusterConfig(4);
    cfg.dispatch = DispatchPolicy::RoundRobin;
    cfg.node.workload.sloSeconds = 0.6;
    cfg.faults = schedule({
        {2.0, FaultKind::NodeCrash, 2, 1.0, 5.0},
        {4.0, FaultKind::DmaStall, 0, 3.0, 3.0},
        {6.0, FaultKind::FlakyNode, 3, 0.4, 3.0},
    });
    cfg.faultPolicy.retryMax = 3;
    cfg.faultPolicy.retryBackoffSeconds = 0.02;
    cfg.faultPolicy.hedge = true;
    cfg.faultPolicy.hedgeThreshold = 1.0;
    cfg.faultPolicy.brownoutDepth = 6.0;
    cfg.faultPolicy.policyTickSeconds = 0.05;

    ClusterConfig par = cfg;
    par.threads = 2;
    ClusterResult serial = ClusterSimulator(cfg).run();
    ClusterResult sharded = ClusterSimulator(par).run();
    EXPECT_EQ(serial.faultsInjected, sharded.faultsInjected);
    EXPECT_EQ(serial.crashes, sharded.crashes);
    EXPECT_EQ(serial.redispatched, sharded.redispatched);
    EXPECT_EQ(serial.stream.completed, sharded.stream.completed);
    EXPECT_EQ(serial.stream.shed, sharded.stream.shed);
    EXPECT_EQ(serial.stream.lost, sharded.stream.lost);
    EXPECT_EQ(serial.stream.retried, sharded.stream.retried);
    EXPECT_EQ(serial.stream.hedged, sharded.stream.hedged);
    EXPECT_EQ(serial.stream.hedgeWon, sharded.stream.hedgeWon);
    EXPECT_DOUBLE_EQ(serial.stream.p50LatencySeconds,
                     sharded.stream.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(serial.stream.p99LatencySeconds,
                     sharded.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(serial.stream.maxLatencySeconds,
                     sharded.stream.maxLatencySeconds);
    ASSERT_EQ(serial.nodes.size(), sharded.nodes.size());
    for (std::size_t i = 0; i < serial.nodes.size(); ++i) {
        EXPECT_EQ(serial.nodes[i].dispatched,
                  sharded.nodes[i].dispatched);
        EXPECT_EQ(serial.nodes[i].completed,
                  sharded.nodes[i].completed);
    }
}

TEST(FaultCluster, DisplacingFaultsRejectClosedLoopAndSessions)
{
    ClusterConfig cfg = clusterConfig(2);
    cfg.faults = schedule({{1.0, FaultKind::NodeCrash, 0, 1.0, 0.0}});
    cfg.node.arrival = ArrivalProcess::ClosedLoop;
    cfg.node.clients = 4;
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.faults = schedule({{1.0, FaultKind::FlakyNode, 0, 0.5, 0.0}});
    cfg.node.workload.sessionFollowProb = 0.4;
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    // Crash faults need somewhere to put displaced work.
    cfg = clusterConfig(1);
    cfg.faults = schedule({{1.0, FaultKind::NodeCrash, 0, 1.0, 0.0}});
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    // Non-displacing kinds stay legal on those workloads.
    cfg = clusterConfig(2);
    cfg.faults =
        schedule({{1.0, FaultKind::Straggler, 0, 2.0, 1.0}});
    cfg.node.arrival = ArrivalProcess::ClosedLoop;
    cfg.node.clients = 4;
    ClusterResult r = ClusterSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              static_cast<std::int64_t>(cfg.node.streamRequests));
}
