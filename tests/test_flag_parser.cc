/**
 * @file
 * Unit tests for the sn40l_run flag parser (tools/flag_parser.h):
 * unknown flags name their subcommand, missing values and duplicate
 * flags fail, --flag=value and --flag value parse identically, --help
 * short-circuits, and parseList rejects malformed lists.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "tools/flag_parser.h"

using namespace sn40l;
using tools::FlagParser;
using tools::FlagUsageError;
using tools::parseList;
using tools::splitEqualsArgs;

namespace {

void
testHelp(std::ostream &os)
{
    os << "usage: sn40l_run fake [flags]\n";
}

/** Expect a FlagUsageError whose message contains @p needle. */
template <typename Fn>
void
expectUsageError(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected FlagUsageError containing '" << needle << "'";
    } catch (const FlagUsageError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
        EXPECT_STREQ(e.subcommand().c_str(), "fake");
    }
}

} // namespace

TEST(FlagParser, ParsesValuesAndBareFlags)
{
    FlagParser p("fake", testHelp);
    int experts = 0;
    bool prefetch = false;
    p.value("--experts",
            [&](const std::string &v) { experts = std::stoi(v); });
    p.flag("--prefetch", [&]() { prefetch = true; });

    std::ostringstream help;
    EXPECT_FALSE(p.parse({"--experts", "150", "--prefetch"}, help));
    EXPECT_EQ(experts, 150);
    EXPECT_TRUE(prefetch);
    EXPECT_TRUE(help.str().empty());
}

TEST(FlagParser, EqualsSpellingMatchesSpaceSpelling)
{
    for (const std::vector<std::string> &args :
         {std::vector<std::string>{"--experts=42"},
          std::vector<std::string>{"--experts", "42"}}) {
        FlagParser p("fake", testHelp);
        int experts = 0;
        p.value("--experts",
                [&](const std::string &v) { experts = std::stoi(v); });
        std::ostringstream help;
        EXPECT_FALSE(p.parse(args, help));
        EXPECT_EQ(experts, 42);
    }
}

TEST(FlagParser, SplitEqualsArgsOnlyTouchesDoubleDashFlags)
{
    const char *argv[] = {"sn40l_run", "fake", "--a=1", "plain=2", "-j",
                          "4"};
    std::vector<std::string> out =
        splitEqualsArgs(6, const_cast<char **>(argv), 2);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0], "--a");
    EXPECT_EQ(out[1], "1");
    EXPECT_EQ(out[2], "plain=2"); // no leading --, left alone
    EXPECT_EQ(out[3], "-j");
    EXPECT_EQ(out[4], "4");
}

TEST(FlagParser, UnknownFlagNamesTheSubcommand)
{
    FlagParser p("fake", testHelp);
    p.flag("--known", []() {});
    std::ostringstream help;
    expectUsageError([&]() { p.parse({"--bogus"}, help); },
                     "unknown fake flag '--bogus'");
}

TEST(FlagParser, MissingValueFails)
{
    FlagParser p("fake", testHelp);
    p.value("--experts", [](const std::string &) {});
    std::ostringstream help;
    expectUsageError([&]() { p.parse({"--experts"}, help); },
                     "expects a value");
}

TEST(FlagParser, DuplicateFlagFails)
{
    FlagParser p("fake", testHelp);
    int experts = 0;
    p.value("--experts",
            [&](const std::string &v) { experts = std::stoi(v); });
    std::ostringstream help;
    expectUsageError(
        [&]() { p.parse({"--experts", "1", "--experts", "2"}, help); },
        "given more than once");

    // Bare flags are rejected on repeat too.
    FlagParser q("fake", testHelp);
    q.flag("--prefetch", []() {});
    expectUsageError(
        [&]() { q.parse({"--prefetch", "--prefetch"}, help); },
        "given more than once");
}

TEST(FlagParser, ParseStateResetsBetweenRuns)
{
    // The seen-set must reset, or a reused parser would report a
    // duplicate across independent parses.
    FlagParser p("fake", testHelp);
    int experts = 0;
    p.value("--experts",
            [&](const std::string &v) { experts = std::stoi(v); });
    std::ostringstream help;
    EXPECT_FALSE(p.parse({"--experts", "1"}, help));
    EXPECT_FALSE(p.parse({"--experts", "2"}, help));
    EXPECT_EQ(experts, 2);
}

TEST(FlagParser, HelpShortCircuitsAndPrints)
{
    FlagParser p("fake", testHelp);
    bool touched = false;
    p.flag("--touch", [&]() { touched = true; });
    std::ostringstream help;
    EXPECT_TRUE(p.parse({"--help", "--touch"}, help));
    EXPECT_FALSE(touched); // nothing after --help is applied
    EXPECT_NE(help.str().find("usage: sn40l_run fake"),
              std::string::npos);

    std::ostringstream help2;
    EXPECT_TRUE(p.parse({"-h"}, help2));
    EXPECT_FALSE(help2.str().empty());
}

TEST(FlagParser, RegisteringTheSameFlagTwiceIsAProgrammerError)
{
    FlagParser p("fake", testHelp);
    p.flag("--x", []() {});
    EXPECT_THROW(p.flag("--x", []() {}), std::logic_error);
    EXPECT_THROW(p.value("--x", [](const std::string &) {}),
                 std::logic_error);
}

TEST(FlagParser, FailThrowsWithSubcommand)
{
    FlagParser p("fake", testHelp);
    expectUsageError([&]() { p.fail("custom validation message"); },
                     "custom validation message");
}

TEST(ParseListFn, ParsesCommaSeparatedValues)
{
    FlagParser p("fake", testHelp);
    std::vector<int> v = parseList<int>(
        p, "1,2,3", +[](const std::string &s) { return std::stoi(s); });
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[2], 3);
}

TEST(ParseListFn, EmptyElementsAndEmptyListsFail)
{
    FlagParser p("fake", testHelp);
    auto parse = +[](const std::string &s) { return std::stoi(s); };
    expectUsageError([&]() { parseList<int>(p, "1,,3", parse); },
                     "empty element");
    expectUsageError([&]() { parseList<int>(p, "", parse); },
                     "empty list");
}
