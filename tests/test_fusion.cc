/**
 * @file
 * Tests for graph partitioning (streaming-dataflow fusion, unfused
 * baseline, GPU conventional fusion), traffic accounting, and the
 * placer.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/bandwidth_model.h"
#include "compiler/fusion.h"
#include "compiler/placer.h"
#include "models/fft_conv.h"
#include "models/transformer_builder.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::compiler;

namespace {

graph::DataflowGraph
decodeGraph()
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 2048;
    spec.tensorParallel = 8;
    return models::buildTransformer(spec);
}

/** Every op appears in exactly one kernel. */
void
expectExactPartition(const graph::DataflowGraph &g,
                     const std::vector<Kernel> &kernels)
{
    std::set<graph::OpId> seen;
    for (const Kernel &k : kernels) {
        for (graph::OpId id : k.ops) {
            EXPECT_TRUE(seen.insert(id).second) << "op in two kernels";
        }
    }
    EXPECT_EQ(seen.size(), g.numOps());
}

} // namespace

TEST(Fusion, UnfusedIsOneKernelPerOp)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduUnfused;
    opt.tensorParallel = 8;
    auto kernels = partitionGraph(g, chip, opt);
    EXPECT_EQ(kernels.size(), g.numOps());
    expectExactPartition(g, kernels);
}

TEST(Fusion, FusedKernelsAreFarFewer)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduFused;
    opt.tensorParallel = 8;
    auto kernels = partitionGraph(g, chip, opt);
    expectExactPartition(g, kernels);
    // Streaming dataflow fuses 20+ operators per kernel (Section
    // VIII-3).
    EXPECT_LT(kernels.size() * 20, g.numOps());
}

TEST(Fusion, FusedRespectsResourceCaps)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduFused;
    opt.tensorParallel = 8;
    auto kernels = partitionGraph(g, chip, opt);

    for (Kernel &k : kernels) {
        placeKernel(g, chip, opt, k);
        EXPECT_LE(k.pcusUsed,
                  static_cast<int>(chip.pcuCount * chip.placeableFraction));
        EXPECT_LE(k.pmusUsed,
                  static_cast<int>(chip.pmuCount * chip.placeableFraction));
        for (const StagePlacement &s : k.stages) {
            const graph::Operator &op = g.op(s.op);
            // Placement floors (smaller than the fusion granularity
            // floors): every compute stage gets at least a few PCUs.
            if (op.cls() == graph::OpClass::Systolic) {
                EXPECT_GE(s.pcus, 4);
            }
            if (op.cls() == graph::OpClass::Simd) {
                EXPECT_GE(s.pcus, 2);
            }
        }
    }
}

TEST(Fusion, UnfusedSplitsLargeOps)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_70b();
    spec.phase = models::Phase::Prefill;
    spec.seqLen = 4096;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduUnfused;
    opt.tensorParallel = 8;
    auto kernels = partitionGraph(g, chip, opt);
    EXPECT_GT(totalLaunches(kernels),
              static_cast<std::int64_t>(kernels.size()));
}

TEST(Fusion, FusionImprovesOperationalIntensity)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.tensorParallel = 8;

    opt.mode = ExecMode::RduFused;
    auto fused = partitionGraph(g, chip, opt);
    opt.mode = ExecMode::RduUnfused;
    auto unfused = partitionGraph(g, chip, opt);

    auto oi = [&](const std::vector<Kernel> &ks) {
        auto r = graph::operationalIntensity(g, toFusionGroups(ks));
        return r.intensity();
    };
    EXPECT_GT(oi(fused), oi(unfused));
}

TEST(Fusion, TrafficClassification)
{
    graph::DataflowGraph g("tiny");
    auto x = g.addTensor("x", {64, 64}, graph::DType::BF16,
                         graph::TensorKind::Input);
    auto w = g.addTensor("w", {64, 64}, graph::DType::BF16,
                         graph::TensorKind::Weight);
    auto h = g.addTensor("h", {64, 64});
    auto cache = g.addTensor("kv", {64, 64}, graph::DType::BF16,
                             graph::TensorKind::KvCache);
    auto y = g.addTensor("y", {64, 64}, graph::DType::BF16,
                         graph::TensorKind::Output);
    g.addOp(graph::OpKind::Gemm, "g0", {x, w}, {h});
    g.addOp(graph::OpKind::KvAppend, "kva", {h}, {cache});
    g.addOp(graph::OpKind::Gemm, "g1", {h, cache}, {y});

    Kernel k;
    k.ops = {0, 1, 2};
    accountKernelTraffic(g, k);

    double t = 64 * 64 * 2;
    EXPECT_DOUBLE_EQ(k.weightBytes, t);  // w
    EXPECT_DOUBLE_EQ(k.inputBytes, t);   // x
    EXPECT_DOUBLE_EQ(k.outputBytes, t);  // y
    EXPECT_DOUBLE_EQ(k.kvReadBytes, t);  // cache read by g1
    EXPECT_DOUBLE_EQ(k.kvWriteBytes, t); // appended rows
    // h stays internal.
    EXPECT_DOUBLE_EQ(k.flops, 2.0 * 2 * 64 * 64 * 64);
}

TEST(Fusion, AllReduceBytesTracked)
{
    graph::DataflowGraph g("ar");
    auto x = g.addTensor("x", {128, 128}, graph::DType::BF16,
                         graph::TensorKind::Input);
    auto y = g.addTensor("y", {128, 128});
    auto z = g.addTensor("z", {128, 128}, graph::DType::BF16,
                         graph::TensorKind::Output);
    g.addOp(graph::OpKind::Relu, "r", {x}, {y});
    g.addOp(graph::OpKind::AllReduce, "ar", {y}, {z});

    Kernel k;
    k.ops = {0, 1};
    accountKernelTraffic(g, k);
    EXPECT_EQ(k.collectiveOps, 1);
    EXPECT_DOUBLE_EQ(k.allReduceBytes, 128 * 128 * 2);
}

TEST(GpuFusion, BreaksAtTransposeAndSoftmax)
{
    graph::DataflowGraph g = models::buildFig3Example();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::GpuConventional;
    auto kernels = partitionGraph(g, chip, opt);

    // Gemm0+Mul fuse; Transpose stands alone; Gemm1 stands alone —
    // exactly the Section III-A failure mode.
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_EQ(kernels[0].ops.size(), 2u);
    EXPECT_EQ(kernels[1].ops.size(), 1u);
    EXPECT_EQ(g.op(kernels[1].ops[0]).kind, graph::OpKind::Transpose);
}

TEST(GpuFusion, FlashAttentionPatternFusesWhenEnabled)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::GpuConventional;

    opt.gpuFlashAttention = true;
    auto with_fa = partitionGraph(g, chip, opt);
    opt.gpuFlashAttention = false;
    auto without_fa = partitionGraph(g, chip, opt);

    expectExactPartition(g, with_fa);
    expectExactPartition(g, without_fa);
    // FlashAttention merges 4 kernels into 1 per layer.
    EXPECT_LT(with_fa.size() + 3u * 32, without_fa.size() + 10u);
    // But GPUs still launch far more kernels than streaming dataflow.
    opt.mode = ExecMode::RduFused;
    opt.tensorParallel = 8;
    auto rdu = partitionGraph(g, chip, opt);
    EXPECT_GT(with_fa.size(), 5 * rdu.size());
}

TEST(CostModel, FusedKernelBottleneckIsMemoryForDecode)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduFused;
    opt.tensorParallel = 8;
    auto kernels = partitionGraph(g, chip, opt);

    double weight_bytes = 0.0;
    double hbm_seconds = 0.0;
    for (Kernel &k : kernels) {
        placeKernel(g, chip, opt, k);
        KernelCost cost = costKernel(chip, opt, k);
        weight_bytes += k.weightBytes;
        hbm_seconds += cost.hbmSeconds;
        if (k.weightBytes > 1e9) {
            EXPECT_STREQ(cost.bottleneck(), "hbm");
        }
    }
    // Decode streams the full weights once per token — except the
    // embedding table, which is gathered (only the looked-up rows
    // move), so traffic is slightly below the raw weight bytes.
    EXPECT_LT(weight_bytes, g.weightBytes());
    EXPECT_GT(weight_bytes, g.weightBytes() * 0.95);
    // ~13.5 GB over 8 sockets at ~1.5 TB/s effective: around a
    // millisecond.
    EXPECT_GT(hbm_seconds, 0.5e-3);
    EXPECT_LT(hbm_seconds, 3e-3);
}

TEST(CostModel, UnfusedSmallOpsRunAtLowUtilization)
{
    graph::DataflowGraph g("small");
    auto x = g.addTensor("x", {8, 64}, graph::DType::BF16,
                         graph::TensorKind::Input);
    auto w = g.addTensor("w", {64, 64}, graph::DType::BF16,
                         graph::TensorKind::Weight);
    auto y = g.addTensor("y", {8, 64}, graph::DType::BF16,
                         graph::TensorKind::Output);
    g.addOp(graph::OpKind::Gemm, "g", {x, w}, {y});

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduUnfused;
    auto kernels = partitionGraph(g, chip, opt);
    KernelCost cost = costKernel(chip, opt, kernels[0]);

    // At full utilization this GEMM would take ~flops/peak seconds;
    // the small-op derate makes it far slower.
    double ideal = kernels[0].flops /
                   (chip.peakBf16Flops * chip.systolicEfficiency);
    EXPECT_GT(cost.computeSeconds, 5.0 * ideal);
}

TEST(CostModel, TensorParallelScalesPerSocketWork)
{
    graph::DataflowGraph g = decodeGraph();
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    FusionOptions opt;
    opt.mode = ExecMode::RduFused;

    opt.tensorParallel = 1;
    auto k1 = partitionGraph(g, chip, opt);
    for (Kernel &k : k1)
        placeKernel(g, chip, opt, k);
    double t1 = 0.0;
    for (const Kernel &k : k1)
        t1 += costKernel(chip, opt, k).totalSeconds();

    opt.tensorParallel = 8;
    auto k8 = partitionGraph(g, chip, opt);
    for (Kernel &k : k8)
        placeKernel(g, chip, opt, k);
    double t8 = 0.0;
    for (const Kernel &k : k8)
        t8 += costKernel(chip, opt, k).totalSeconds();

    // Decode is bandwidth-bound: 8 sockets give near-linear speedup
    // (minus collectives and fill).
    EXPECT_GT(t1 / t8, 4.0);
    EXPECT_LT(t1 / t8, 9.0);
}
