/** @file Tests for the DGX A100/H100 baseline executor. */

#include <gtest/gtest.h>

#include "baseline/gpu_executor.h"
#include "models/transformer_builder.h"

using namespace sn40l;
using namespace sn40l::baseline;

namespace {

graph::DataflowGraph
decodeGraph()
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 2048;
    spec.tensorParallel = 8;
    return models::buildTransformer(spec);
}

} // namespace

TEST(GpuConfig, PublishedSpecs)
{
    GpuConfig a100 = GpuConfig::a100();
    EXPECT_DOUBLE_EQ(a100.peakBf16Flops, 312e12);
    EXPECT_DOUBLE_EQ(a100.hbmBandwidth, 2.039e12);
    GpuConfig h100 = GpuConfig::h100();
    EXPECT_DOUBLE_EQ(h100.peakBf16Flops, 989e12);
    EXPECT_DOUBLE_EQ(h100.hbmBandwidth, 3.35e12);

    // Paper Section VI-C: 32 / 64 GB/s host-to-GPU.
    EXPECT_DOUBLE_EQ(DgxConfig::dgxA100().hostToGpuBandwidth, 32e9);
    EXPECT_DOUBLE_EQ(DgxConfig::dgxH100().hostToGpuBandwidth, 64e9);
}

TEST(GpuConfig, ExpertCapacityMatchesPaperOomPoint)
{
    // 150 Llama2-7B experts fit in host DRAM; 151+ do not (the
    // paper's "DGXs run out of memory at 150 experts").
    double expert = models::LlmConfig::llama2_7b().weightBytes();
    DgxConfig dgx = DgxConfig::dgxA100();
    EXPECT_GE(static_cast<double>(dgx.expertCapacityBytes()),
              150 * expert);
    EXPECT_LT(static_cast<double>(dgx.expertCapacityBytes()),
              152 * expert);
}

TEST(GpuExecutor, DecodeIsBandwidthBound)
{
    graph::DataflowGraph g = decodeGraph();
    GpuExecutor a100(DgxConfig::dgxA100());
    GpuRunResult r = a100.run(g);

    // Weight streaming alone: 13.48 GB / 8 GPUs at ~50% of 2 TB/s is
    // ~1.65 ms; total includes launches and collectives.
    EXPECT_GT(r.seconds, 1.6e-3);
    EXPECT_LT(r.seconds, 8e-3);
    EXPECT_GT(r.kernels, 300);
    EXPECT_GT(r.launchSeconds, 0.0);
}

TEST(GpuExecutor, H100BeatsA100)
{
    graph::DataflowGraph g = decodeGraph();
    double a = GpuExecutor(DgxConfig::dgxA100()).run(g).seconds;
    double h = GpuExecutor(DgxConfig::dgxH100()).run(g).seconds;
    EXPECT_LT(h, a);
    EXPECT_GT(h, a / 3.0); // decode gains are bandwidth-ish, not 3x
}

TEST(GpuExecutor, FlashAttentionReducesKernels)
{
    graph::DataflowGraph g = decodeGraph();
    GpuRunResult with_fa =
        GpuExecutor(DgxConfig::dgxA100(), true).run(g);
    GpuRunResult without_fa =
        GpuExecutor(DgxConfig::dgxA100(), false).run(g);
    EXPECT_LT(with_fa.kernels, without_fa.kernels);
    EXPECT_LE(with_fa.seconds, without_fa.seconds);
}

TEST(GpuExecutor, PrefillIsComputeBoundAndScalesWithSeq)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Prefill;
    spec.tensorParallel = 8;

    spec.seqLen = 1024;
    double t1 = GpuExecutor(DgxConfig::dgxA100())
                    .run(models::buildTransformer(spec)).seconds;
    spec.seqLen = 4096;
    double t4 = GpuExecutor(DgxConfig::dgxA100())
                    .run(models::buildTransformer(spec)).seconds;
    EXPECT_GT(t4, 3.0 * t1);
    EXPECT_LT(t4, 6.0 * t1);
}
