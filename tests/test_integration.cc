/**
 * @file
 * Whole-system integration tests: the paper's headline claims as
 * executable assertions over the full pipeline (builder -> compiler
 * -> executor -> serving).
 */

#include <gtest/gtest.h>

#include "coe/serving.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/spec_decode.h"

using namespace sn40l;

TEST(Integration, FusionSpeedupBandsAcrossTheSuite)
{
    // Paper Fig 10: speedups between ~1.5x and ~13x over the unfused
    // baseline across all benchmarks.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    for (const auto &bench : models::paperBenchmarks()) {
        graph::DataflowGraph g = bench.build();
        double unfused = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::Unfused)
            .seconds();
        double fused = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::FusedSO)
            .seconds();
        double speedup = unfused / fused;
        EXPECT_GT(speedup, 1.2) << bench.name;
        EXPECT_LT(speedup, 16.0) << bench.name;
    }
}

TEST(Integration, KernelCallRatioAlwaysAboveOne)
{
    // Paper Fig 11: every benchmark launches strictly fewer kernels
    // when fused.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    for (const auto &bench : models::paperBenchmarks()) {
        graph::DataflowGraph g = bench.build();
        auto unfused = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::Unfused);
        auto fused = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::FusedHO);
        double ratio =
            static_cast<double>(unfused.program.totalLaunches) /
            static_cast<double>(fused.program.totalLaunches);
        EXPECT_GT(ratio, 5.0) << bench.name;
    }
}

TEST(Integration, FlashFftConvIsASingleFusedKernel)
{
    // Paper Section VI-A: "the entire FlashFFTConv benchmark is
    // executed with a single kernel launch".
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    models::FftConvSpec spec;
    graph::DataflowGraph g = models::buildFftConv(spec);
    auto fused = runtime::runWorkload(g, node, 1,
                                      runtime::RunConfig::FusedHO);
    EXPECT_EQ(fused.program.kernels.size(), 1u);

    // And it shows the largest fusion speedup of the suite (13x).
    auto unfused = runtime::runWorkload(g, node, 1,
                                        runtime::RunConfig::Unfused);
    EXPECT_GT(unfused.seconds() / fused.seconds(), 8.0);
}

TEST(Integration, HardwareOrchestrationHelpsDecodeNotPrefill)
{
    // Paper Section VI-A2: decode gains noticeably from HW-orchestrated
    // launches; prefill sees at most ~1.1x.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);

    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::mistral7b();
    spec.tensorParallel = 8;
    spec.seqLen = 2048;

    spec.phase = models::Phase::Decode;
    graph::DataflowGraph decode = models::buildTransformer(spec);
    double d_so = runtime::runWorkload(decode, node, 8,
                                       runtime::RunConfig::FusedSO)
                      .seconds();
    double d_ho = runtime::runWorkload(decode, node, 8,
                                       runtime::RunConfig::FusedHO)
                      .seconds();

    spec.phase = models::Phase::Prefill;
    graph::DataflowGraph prefill = models::buildTransformer(spec);
    double p_so = runtime::runWorkload(prefill, node, 8,
                                       runtime::RunConfig::FusedSO)
                      .seconds();
    double p_ho = runtime::runWorkload(prefill, node, 8,
                                       runtime::RunConfig::FusedHO)
                      .seconds();

    double decode_gain = d_so / d_ho;
    double prefill_gain = p_so / p_ho;
    EXPECT_GT(decode_gain, 1.3);
    EXPECT_LT(prefill_gain, 1.15);
    EXPECT_GT(decode_gain, prefill_gain);
}

TEST(Integration, DecodeSaturatesMostOfHbmBandwidth)
{
    // Paper Section VI-B: fused decode streams weights at ~85% of
    // HBM bandwidth; the cost model's decode time should be within
    // ~25% of the pure weight-streaming bound.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 2048;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    double t = runtime::runWorkload(g, node, 8,
                                    runtime::RunConfig::FusedHO)
                   .seconds();
    double bound = g.weightBytes() / 8 /
                   node.chip.effectiveHbmBandwidth();
    EXPECT_GT(t, bound);
    EXPECT_LT(t, bound * 1.4);
}

TEST(Integration, TableFourTokenRates)
{
    // Paper Table IV: 1042 / 457 / 129 output tokens/s/user on 16
    // sockets. Accept generous bands (see EXPERIMENTS.md).
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(16);
    auto specs = models::llama31Specs();

    double t8 = runtime::decodeSecondsPerToken(
        models::buildTransformer(specs[0]), node, 16);
    double t70 = runtime::decodeSecondsPerToken(
        models::buildTransformer(specs[1]), node, 16);
    double t405 = runtime::decodeSecondsPerToken(
        models::buildTransformer(specs[2]), node, 16);

    double r8 = 1.0 / t8;
    runtime::SpecDecodeConfig sd;
    double r70 = runtime::specDecodeTokensPerSecond(sd, t70, t8);
    double r405 = runtime::specDecodeTokensPerSecond(sd, t405, t8);

    EXPECT_NEAR(r8, 1042.0, 250.0);
    EXPECT_NEAR(r70, 457.0, 120.0);
    EXPECT_NEAR(r405, 129.0, 35.0);
    // Ordering is strict.
    EXPECT_GT(r8, r70);
    EXPECT_GT(r70, r405);
}

TEST(Integration, EndToEndCoeLatencyOrdering)
{
    // At 150 experts with 20 output tokens, the SN40L node is the
    // fastest platform, H100 second, A100 third (Fig 12).
    auto latency = [](coe::Platform p) {
        coe::ServingConfig cfg;
        cfg.platform = p;
        cfg.numExperts = 150;
        cfg.requests = 50;
        return coe::ServingSimulator(cfg).run().perBatch.total();
    };
    double rdu = latency(coe::Platform::Sn40l);
    double h100 = latency(coe::Platform::DgxH100);
    double a100 = latency(coe::Platform::DgxA100);
    EXPECT_LT(rdu, h100);
    EXPECT_LT(h100, a100);
}

TEST(Integration, SwitchTimeDominatesDgxNotRdu)
{
    // Fig 1: model switching is the majority of DGX latency at BS=8
    // but a small fraction on the SN40L.
    auto share = [](coe::Platform p) {
        coe::ServingConfig cfg;
        cfg.platform = p;
        cfg.numExperts = 150;
        cfg.batch = 8;
        cfg.requests = 50;
        return coe::ServingSimulator(cfg).run().perBatch.switchShare();
    };
    EXPECT_GT(share(coe::Platform::DgxA100), 0.5);
    EXPECT_LT(share(coe::Platform::Sn40l), 0.35);
}
