/**
 * @file
 * Operational-intensity tests, including the paper's Table I example
 * (simplified Monarch FFT decomposition, Fig 3).
 */

#include <gtest/gtest.h>

#include "graph/intensity.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::graph;

namespace {

/**
 * The Fig 3 graph: Gemm0 -> Mul(Scale) -> Transpose -> Gemm1 with the
 * paper's shapes. See models/fft_conv.cc for the library builder; the
 * test rebuilds it by hand to keep this test self-contained.
 */
struct Fig3
{
    DataflowGraph g{"fig3"};
    OpId gemm0, mul, transpose, gemm1;

    Fig3()
    {
        TensorId w0 = g.addTensor("W0", {1024, 128}, DType::BF16,
                                  TensorKind::Weight);
        TensorId i0 = g.addTensor("I0", {128, 1024}, DType::BF16,
                                  TensorKind::Input);
        TensorId s = g.addTensor("S", {1024, 1024});
        TensorId scale = g.addTensor("Scale", {128, 1024}, DType::BF16,
                                     TensorKind::Constant);
        TensorId m = g.addTensor("M", {1024, 1024});
        TensorId t = g.addTensor("T", {1024, 1024});
        TensorId w1 = g.addTensor("W1", {128, 1024}, DType::BF16,
                                  TensorKind::Weight);
        TensorId out = g.addTensor("Out", {128, 1024}, DType::BF16,
                                   TensorKind::Output);

        gemm0 = g.addOp(OpKind::Gemm, "Gemm0", {w0, i0}, {s});
        mul = g.addOp(OpKind::Mul, "Mul", {s, scale}, {m});
        transpose = g.addOp(OpKind::Transpose, "Transpose", {m}, {t});
        gemm1 = g.addOp(OpKind::Gemm, "Gemm1", {w1, t}, {out});
    }
};

} // namespace

TEST(Intensity, Fig3TotalFlops)
{
    Fig3 f;
    // 2 * 1024*1024*128 per GEMM, 1 FLOP/elem for the Mul.
    double expected = 2.0 * 268435456.0 + 1048576.0;
    EXPECT_DOUBLE_EQ(f.g.totalFlops(), expected);
}

TEST(Intensity, TableOneNoFusion)
{
    Fig3 f;
    auto r = operationalIntensity(f.g, singleOpGroups(f.g));
    // Paper Table I: 39.5 FLOPs/byte. Our byte accounting charges
    // every operand at fusion-group boundaries; see EXPERIMENTS.md.
    EXPECT_NEAR(r.intensity(), 38.72, 0.05);
}

TEST(Intensity, TableOnePartialFusion)
{
    Fig3 f;
    std::vector<FusionGroup> groups(2);
    groups[0].ops = {f.gemm0, f.mul, f.transpose};
    groups[1].ops = {f.gemm1};
    auto r = operationalIntensity(f.g, groups);
    // Paper Table I: 102.6 FLOPs/byte.
    EXPECT_NEAR(r.intensity(), 97.71, 0.05);
}

TEST(Intensity, TableOneFullFusion)
{
    Fig3 f;
    auto r = operationalIntensity(f.g, singleGroup(f.g));
    // Paper Table I: 410.4 FLOPs/byte — exact match under our
    // accounting: 537,919,488 FLOPs / 1,310,720 bytes.
    EXPECT_NEAR(r.intensity(), 410.4, 0.05);
    EXPECT_DOUBLE_EQ(r.bytes, 1310720.0);
}

TEST(Intensity, FusionMonotonicallyImprovesIntensity)
{
    Fig3 f;
    auto unfused = operationalIntensity(f.g, singleOpGroups(f.g));
    std::vector<FusionGroup> partial(2);
    partial[0].ops = {f.gemm0, f.mul, f.transpose};
    partial[1].ops = {f.gemm1};
    auto mid = operationalIntensity(f.g, partial);
    auto fused = operationalIntensity(f.g, singleGroup(f.g));

    EXPECT_LT(unfused.intensity(), mid.intensity());
    EXPECT_LT(mid.intensity(), fused.intensity());
    // FLOPs do not change with fusion; only bytes do.
    EXPECT_DOUBLE_EQ(unfused.flops, fused.flops);
    EXPECT_GT(unfused.bytes, fused.bytes);
}

TEST(Intensity, PartitionMustBeExact)
{
    Fig3 f;
    std::vector<FusionGroup> missing(1);
    missing[0].ops = {f.gemm0, f.mul};
    EXPECT_THROW(operationalIntensity(f.g, missing), sim::SimPanic);

    std::vector<FusionGroup> dup(2);
    dup[0].ops = {f.gemm0, f.mul, f.transpose, f.gemm1};
    dup[1].ops = {f.gemm0};
    EXPECT_THROW(operationalIntensity(f.g, dup), sim::SimPanic);
}

TEST(Intensity, WeightsReadOncePerGroup)
{
    // Two ops sharing one weight in one group: the weight is charged
    // once; split across groups it is charged twice.
    DataflowGraph g("shared");
    TensorId x = g.addTensor("x", {64, 64}, DType::BF16, TensorKind::Input);
    TensorId w = g.addTensor("w", {64, 64}, DType::BF16, TensorKind::Weight);
    TensorId h = g.addTensor("h", {64, 64});
    TensorId y = g.addTensor("y", {64, 64}, DType::BF16, TensorKind::Output);
    OpId a = g.addOp(OpKind::Gemm, "a", {x, w}, {h});
    OpId b = g.addOp(OpKind::Gemm, "b", {h, w}, {y});

    auto fused = operationalIntensity(g, singleGroup(g));
    std::vector<FusionGroup> split(2);
    split[0].ops = {a};
    split[1].ops = {b};
    auto unfused = operationalIntensity(g, split);

    double wbytes = 64 * 64 * 2;
    // Unfused re-reads w and materializes h (read + write).
    EXPECT_DOUBLE_EQ(unfused.bytes - fused.bytes, wbytes + 2 * wbytes);
}
