/**
 * @file
 * Tests for the channel-interleaved memory model: aggregate bandwidth
 * on contiguous streams, channel camping on pathological strides, and
 * the serving-model consistency check between the DES DMA path and
 * the analytic switch estimate.
 */

#include <gtest/gtest.h>

#include "coe/serving.h"
#include "mem/interleaved_memory.h"
#include "runtime/machine.h"
#include "sim/log.h"

using namespace sn40l;
using sim::EventQueue;
using sim::Tick;

TEST(InterleavedMemory, AddressMappingRotatesChannels)
{
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);
    EXPECT_EQ(hbm.channelOf(0), 0);
    EXPECT_EQ(hbm.channelOf(255), 0);
    EXPECT_EQ(hbm.channelOf(256), 1);
    EXPECT_EQ(hbm.channelOf(256 * 8), 0); // wraps
    EXPECT_EQ(hbm.numChannels(), 8);
    EXPECT_DOUBLE_EQ(hbm.aggregateBandwidth(), 800e9);
}

TEST(InterleavedMemory, ContiguousStreamReachesAggregateBandwidth)
{
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);

    Tick done = -1;
    double bytes = 8e9; // 1 GB per channel
    hbm.access(0, bytes, [&]() { done = eq.now(); });
    eq.run();
    // 8 GB at 800 GB/s aggregate = 10 ms.
    EXPECT_NEAR(sim::toMs(done), 10.0, 0.1);
}

TEST(InterleavedMemory, ChannelCampingStrideCollapsesToOneChannel)
{
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);

    // Stride of channels * interleave: every element lands in ch 0.
    Tick done = -1;
    std::int64_t count = 1 << 20;
    std::int64_t elem = 256;
    hbm.accessStrided(0, 8 * 256, count, elem, [&]() { done = eq.now(); });
    eq.run();

    double bytes = static_cast<double>(count * elem); // 256 MB
    Tick one_channel = sim::transferTicks(bytes, 100e9);
    EXPECT_NEAR(static_cast<double>(done),
                static_cast<double>(one_channel), 1e6);

    // The same volume with unit stride uses all channels: ~8x faster.
    EventQueue eq2;
    mem::InterleavedMemory hbm2(eq2, "hbm", 8, 100e9, 256);
    Tick done2 = -1;
    hbm2.accessStrided(0, 256, count, elem, [&]() { done2 = eq2.now(); });
    eq2.run();
    EXPECT_NEAR(static_cast<double>(done) / static_cast<double>(done2),
                8.0, 0.1);
}

TEST(InterleavedMemory, StridedCountZeroIsALegalNoOp)
{
    // Regression: count == 0 used to be rejected as an internal panic
    // alongside genuinely invalid inputs. A zero-element access — even
    // with a channel-camping stride of channels x interleave — must
    // simply complete without moving a byte.
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);
    bool done = false;
    hbm.accessStrided(0, 8 * 256, 0, 256, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq.now(), 0);
    EXPECT_DOUBLE_EQ(hbm.stats().get("bytes"), 0.0);
}

TEST(InterleavedMemory, NegativeStrideWalksChannelsDownward)
{
    // A negative stride is a legal descending walk while every
    // element stays at a non-negative address.
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);
    Tick done = -1;
    hbm.accessStrided(7 * 256, -256, 8, 256, [&]() { done = eq.now(); });
    eq.run();
    // One element per channel, all concurrent.
    EXPECT_EQ(done, sim::transferTicks(256, 100e9));
}

TEST(InterleavedMemory, StridedGuardsRejectBadInputsWithFatalError)
{
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 8, 100e9, 256);
    // Negative element count.
    EXPECT_THROW(hbm.accessStrided(0, 256, -1, 256, nullptr),
                 sim::FatalError);
    // Non-positive element size.
    EXPECT_THROW(hbm.accessStrided(0, 256, 4, 0, nullptr),
                 sim::FatalError);
    // Negative stride descending below address zero.
    EXPECT_THROW(hbm.accessStrided(256, -256, 3, 256, nullptr),
                 sim::FatalError);
}

TEST(InterleavedMemory, ZeroByteAccessCompletesImmediately)
{
    EventQueue eq;
    mem::InterleavedMemory hbm(eq, "hbm", 4, 100e9, 256);
    bool done = false;
    hbm.access(0, 0.0, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

TEST(InterleavedMemory, ValidatesConfig)
{
    EventQueue eq;
    EXPECT_THROW(mem::InterleavedMemory(eq, "x", 0, 1e9, 256),
                 sim::FatalError);
    EXPECT_THROW(mem::InterleavedMemory(eq, "x", 4, 1e9, 0),
                 sim::FatalError);
    mem::InterleavedMemory ok(eq, "ok", 4, 1e9, 256);
    EXPECT_THROW(ok.channelOf(-1), sim::SimPanic);
}

TEST(ServingConsistency, DesDmaAgreesWithAnalyticSwitchModel)
{
    // The ServingSimulator charges switches with an analytic estimate;
    // verify that pushing the same expert copy through the node's DES
    // DMA path (Fig 9's memcpy step) lands within 2%.
    coe::ServingConfig cfg;
    cfg.platform = coe::Platform::Sn40l;
    coe::ServingSimulator sim_model(cfg);
    double analytic = sim_model.phaseCosts().switchSeconds;

    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(8);
    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    double bytes = cfg.expertBase.weightBytes();

    Tick done = -1;
    node.copyDdrToHbm(bytes, [&]() { done = eq.now(); });
    eq.run();

    EXPECT_NEAR(sim::toSeconds(done), analytic, analytic * 0.02);
}
