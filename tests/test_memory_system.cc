/**
 * @file
 * Tests for the three-tier MemorySystem facade (DMA pool scheduling,
 * priorities, cancellation, bandwidth contention) and the async
 * CoeRuntime protocol it drives (pinning, in-flight protection,
 * speculative reservations), plus the event-driven serving path that
 * ties them together.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coe/coe_runtime.h"
#include "coe/serving.h"
#include "mem/memory_system.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;
using sim::EventQueue;
using sim::Tick;

namespace {

/** One-channel tiers make serialization arithmetic exact. */
mem::MemorySystemConfig
narrowConfig(int engines = 1)
{
    mem::MemorySystemConfig cfg;
    cfg.ddr.channels = 1;
    cfg.ddr.perChannelBandwidth = 100e9;
    cfg.hbm.channels = 1;
    cfg.hbm.perChannelBandwidth = 1000e9;
    cfg.dmaEngines = engines;
    return cfg;
}

ExpertZoo
tinyZoo(int count, double bytes, double mutable_bytes = 0.0)
{
    ExpertZoo zoo;
    for (int i = 0; i < count; ++i) {
        ExpertModel e;
        e.name = "e" + std::to_string(i);
        e.config = models::LlmConfig::llama2_7b();
        e.bytes = bytes;
        e.mutableBytes = mutable_bytes;
        zoo.add(e);
    }
    return zoo;
}

ServingConfig
asyncStreamConfig(bool prefetch)
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 150;
    cfg.batch = 1;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.streamRequests = 300;
    cfg.arrivalRatePerSec = 24.0;
    cfg.seed = 3;
    cfg.predictivePrefetch = prefetch;
    return cfg;
}

} // namespace

TEST(MemorySystem, ValidatesConfig)
{
    EventQueue eq;
    mem::MemorySystemConfig cfg = narrowConfig();
    cfg.dmaEngines = 0;
    EXPECT_THROW(mem::MemorySystem(eq, "m", cfg), sim::FatalError);
    cfg = narrowConfig();
    cfg.ddr.channels = 0;
    EXPECT_THROW(mem::MemorySystem(eq, "m", cfg), sim::FatalError);
    cfg = narrowConfig();
    cfg.hbm.perChannelBandwidth = 0.0;
    EXPECT_THROW(mem::MemorySystem(eq, "m", cfg), sim::FatalError);
}

TEST(MemorySystem, LoadPacedBySlowerTier)
{
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig());

    Tick done = -1;
    m.load(0, 0, 1e9, mem::TransferPriority::Demand,
           [&]() { done = eq.now(); });
    eq.run();
    // 1 GB at the DDR tier's 100 GB/s: 10 ms; the HBM side is 10x
    // faster and hides entirely.
    EXPECT_EQ(done, sim::transferTicks(1e9, 100e9));
    EXPECT_EQ(m.loadsInFlight(), 0);
    EXPECT_EQ(m.queuedLoads(), 0);
}

TEST(MemorySystem, DemandJumpsAheadOfQueuedPrefetch)
{
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig(/*engines=*/1));

    std::vector<char> order;
    // A grabs the single engine; B and C queue behind it.
    m.load(0, 0, 1e9, mem::TransferPriority::Prefetch,
           [&]() { order.push_back('A'); });
    m.load(0, 0, 1e9, mem::TransferPriority::Prefetch,
           [&]() { order.push_back('B'); });
    m.load(0, 0, 1e9, mem::TransferPriority::Demand,
           [&]() { order.push_back('C'); });
    eq.run();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 'A');
    EXPECT_EQ(order[1], 'C'); // demand drained before the prefetch
    EXPECT_EQ(order[2], 'B');
}

TEST(MemorySystem, CancelDropsQueuedLoadOnly)
{
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig(/*engines=*/1));

    bool first_done = false, second_done = false;
    mem::TransferId first = m.load(0, 0, 1e9,
                                   mem::TransferPriority::Prefetch,
                                   [&]() { first_done = true; });
    mem::TransferId second = m.load(0, 0, 1e9,
                                    mem::TransferPriority::Prefetch,
                                    [&]() { second_done = true; });

    EXPECT_FALSE(m.cancel(first)); // already issued on the engine
    EXPECT_EQ(m.queuedLoads(), 1);
    EXPECT_TRUE(m.cancel(second)); // still queued
    EXPECT_EQ(m.queuedLoads(), 0);

    eq.run();
    EXPECT_TRUE(first_done);
    EXPECT_FALSE(second_done); // cancelled callback never fires
}

TEST(MemorySystem, PromoteMovesPrefetchToDemandQueue)
{
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig(/*engines=*/1));

    std::vector<char> order;
    mem::TransferId busy = m.load(0, 0, 1e9,
                                  mem::TransferPriority::Prefetch,
                                  [&]() { order.push_back('X'); });
    mem::TransferId slow = m.load(0, 0, 1e9,
                                  mem::TransferPriority::Prefetch,
                                  [&]() { order.push_back('P'); });
    m.load(0, 0, 1e9, mem::TransferPriority::Prefetch,
           [&]() { order.push_back('Q'); });

    EXPECT_FALSE(m.promote(busy)); // issued: nothing to move
    EXPECT_TRUE(m.promote(slow));
    EXPECT_FALSE(m.promote(slow)); // now demand, not prefetch
    eq.run();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 'X');
    EXPECT_EQ(order[1], 'P'); // promoted ahead of the other speculation
    EXPECT_EQ(order[2], 'Q');
}

TEST(MemorySystem, ConcurrentLoadsSumToChannelBandwidth)
{
    // Two engines over a single DDR channel: the copies overlap on
    // the engines but serialize on the channel, so moving 2 GB takes
    // exactly the single-channel time for 2 GB — bandwidth is
    // conserved, not duplicated.
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig(/*engines=*/2));

    Tick last = 0;
    for (int i = 0; i < 2; ++i)
        m.load(0, 0, 1e9, mem::TransferPriority::Demand,
               [&]() { last = eq.now(); });
    eq.run();
    EXPECT_EQ(last, sim::transferTicks(2e9, 100e9));
}

TEST(MemorySystem, TrafficContendsWithExpertStreaming)
{
    // Expert DMA writes and decode traffic share the HBM channels:
    // 1 GB of traffic behind a load's 1 GB HBM write drains at the
    // channel's 1 TB/s, one after the other.
    EventQueue eq;
    mem::MemorySystem m(eq, "m", narrowConfig());

    Tick traffic_done = -1;
    m.load(0, 0, 1e9, mem::TransferPriority::Demand, nullptr);
    m.traffic(1e9, [&]() { traffic_done = eq.now(); });
    eq.run();

    Tick hbm_share = sim::transferTicks(1e9, 1000e9);
    EXPECT_EQ(traffic_done, 2 * hbm_share);
}

// ---------------------------------------------------------------
// Async CoeRuntime protocol

TEST(CoeRuntimeAsync, PinnedAndLoadingExpertsSurviveEvictionPressure)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250); // two experts fit

    AsyncActivation a0 = runtime.activateAsync(0);
    EXPECT_FALSE(a0.hit);
    EXPECT_DOUBLE_EQ(a0.bytesToLoad, 100.0);
    EXPECT_EQ(runtime.state(0), ExpertState::Loading);
    runtime.pin(0);

    AsyncActivation a1 = runtime.activateAsync(1);
    EXPECT_FALSE(a1.hit);
    EXPECT_NE(a1.hbmOffset, a0.hbmOffset);

    // Expert 0 is pinned, expert 1 is mid-transfer: nothing may be
    // evicted to make room for a third expert.
    EXPECT_THROW(runtime.activateAsync(2), sim::FatalError);

    // Once 1 lands (unpinned, Loaded) it becomes the victim; the
    // pinned-and-loading 0 is never touched.
    runtime.completeLoad(1);
    AsyncActivation a2 = runtime.activateAsync(2);
    EXPECT_EQ(a2.evictions, 1);
    EXPECT_TRUE(runtime.resident(0));
    EXPECT_FALSE(runtime.resident(1));
    EXPECT_EQ(runtime.state(0), ExpertState::Loading);

    // Double completion or unpinning below zero is a simulator bug.
    runtime.completeLoad(0);
    EXPECT_THROW(runtime.completeLoad(0), sim::SimPanic);
    runtime.unpin(0);
    EXPECT_THROW(runtime.unpin(0), sim::SimPanic);
}

TEST(CoeRuntimeAsync, SyncActivateRejectsInFlightExperts)
{
    // Mixing the protocols on an expert mid-transfer would let the
    // synchronous path claim a hit for data that is not in HBM yet.
    ExpertZoo zoo = tinyZoo(3, 100.0);
    CoeRuntime runtime(zoo, 250);
    runtime.beginPrefetch(0);
    EXPECT_THROW(runtime.activate(0), sim::SimPanic);
    runtime.activateAsync(1);
    EXPECT_THROW(runtime.activate(1), sim::SimPanic);
    runtime.completeLoad(1);
    EXPECT_TRUE(runtime.activate(1).hit);
}

TEST(CoeRuntimeAsync, ActivationWaitsOnInFlightTransfer)
{
    ExpertZoo zoo = tinyZoo(3, 100.0);
    CoeRuntime runtime(zoo, 250);

    runtime.activateAsync(0);
    AsyncActivation again = runtime.activateAsync(0);
    EXPECT_FALSE(again.hit);
    EXPECT_TRUE(again.pending); // wait on the first transfer
    EXPECT_DOUBLE_EQ(again.bytesToLoad, 0.0);

    runtime.completeLoad(0);
    AsyncActivation loaded = runtime.activateAsync(0);
    EXPECT_TRUE(loaded.hit);
    EXPECT_FALSE(loaded.pending);
}

TEST(CoeRuntimeAsync, PrefetchCancellationFreesReservedBytes)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250);

    std::int64_t free0 = runtime.freeRegionBytes();
    auto p = runtime.beginPrefetch(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->pending);
    EXPECT_EQ(runtime.state(0), ExpertState::PrefetchReserved);
    EXPECT_EQ(runtime.freeRegionBytes(), free0 - 100);

    runtime.cancelPrefetch(0);
    EXPECT_FALSE(runtime.resident(0));
    EXPECT_EQ(runtime.freeRegionBytes(), free0);

    // Speculation never evicts: once the region is full of loaded
    // experts, beginPrefetch declines instead of displacing them.
    runtime.activateAsync(1);
    runtime.activateAsync(2);
    EXPECT_FALSE(runtime.beginPrefetch(3).has_value());
    // ...and prefetching a resident expert is meaningless.
    EXPECT_FALSE(runtime.beginPrefetch(1).has_value());
}

TEST(CoeRuntimeAsync, EvictionPressureCancelsReservationsThroughHook)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250);

    int hook_calls = 0;
    runtime.setPrefetchCancelHook([&](int expert) {
        ++hook_calls;
        EXPECT_EQ(expert, 0);
        return true; // transfer was still queued; cancellation ok
    });

    runtime.beginPrefetch(0);
    runtime.activateAsync(1);
    runtime.completeLoad(1);

    // Demand for two more experts: the loaded expert 1 is MRU, so the
    // cold-end reservation for 0 is reclaimed first.
    AsyncActivation a2 = runtime.activateAsync(2);
    EXPECT_EQ(hook_calls, 1);
    EXPECT_EQ(a2.evictions, 0); // cancellation, not an eviction
    EXPECT_FALSE(runtime.resident(0));
    EXPECT_TRUE(runtime.resident(1));
    EXPECT_GT(runtime.stats().get("prefetch_cancels"), 0.0);
}

TEST(CoeRuntimeAsync, IssuedPrefetchBecomesLoadingInsteadOfDying)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250);

    runtime.setPrefetchCancelHook([](int) {
        return false; // DMA already streaming: cannot cancel
    });

    runtime.beginPrefetch(0);
    runtime.activateAsync(1);
    runtime.completeLoad(1);

    // Pressure cannot reclaim the streaming speculation, so it must
    // evict the loaded expert 1 instead; 0 survives as Loading.
    AsyncActivation a2 = runtime.activateAsync(2);
    EXPECT_EQ(a2.evictions, 1);
    EXPECT_TRUE(runtime.resident(0));
    EXPECT_EQ(runtime.state(0), ExpertState::Loading);
    EXPECT_FALSE(runtime.resident(1));
}

// ---------------------------------------------------------------
// Event-driven serving on the real memory system

TEST(AsyncServing, SameSeedGivesIdenticalServingResult)
{
    ServingConfig cfg = asyncStreamConfig(/*prefetch=*/true);
    cfg.streamRequests = 200;
    ServingResult a = ServingSimulator(cfg).run();
    ServingResult b = ServingSimulator(cfg).run();

    EXPECT_DOUBLE_EQ(a.stream.p50LatencySeconds, b.stream.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p95LatencySeconds, b.stream.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p99LatencySeconds, b.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.throughputRequestsPerSec,
                     b.stream.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.stream.meanSwitchStallSeconds,
                     b.stream.meanSwitchStallSeconds);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.stream.prefetchesIssued, b.stream.prefetchesIssued);
    EXPECT_EQ(a.stream.prefetchHits, b.stream.prefetchHits);
}

TEST(AsyncServing, ExpertLoadsAreDmaTransfersNotClosedForm)
{
    ServingConfig cfg = asyncStreamConfig(/*prefetch=*/false);
    cfg.streamRequests = 150;
    ServingSimulator sim(cfg);
    ServingResult r = sim.run();

    // Every miss streamed through the DMA pool...
    EXPECT_GT(sim.stats().get("dma_loads_issued"), 0.0);
    EXPECT_DOUBLE_EQ(sim.stats().get("dma_loads_issued"),
                     sim.stats().get("misses"));
    // ...moving the experts' actual bytes.
    double expert_bytes = cfg.expertBase.weightBytes();
    EXPECT_NEAR(sim.stats().get("dma_load_bytes"),
                sim.stats().get("misses") * expert_bytes,
                expert_bytes * 0.01);
    // Stalls are measured per batch, bounded by the real copy time.
    EXPECT_EQ(sim.stallSamples().count(),
              static_cast<std::size_t>(r.stream.batches));
    EXPECT_GT(r.stream.p95SwitchStallSeconds, 0.0);
    EXPECT_LT(r.stream.p95SwitchStallSeconds,
              sim.phaseCosts().switchSeconds);
}

TEST(AsyncServing, SpeculativePrefetchCutsTailLatencyAndMisses)
{
    // The acceptance scenario: Zipf routing over 150 experts, batch 1,
    // saturating load. Speculation must strictly help.
    ServingResult off = ServingSimulator(asyncStreamConfig(false)).run();
    ServingResult on = ServingSimulator(asyncStreamConfig(true)).run();

    EXPECT_LT(on.stream.p95LatencySeconds, off.stream.p95LatencySeconds);
    EXPECT_LT(on.missRate, off.missRate);
    EXPECT_LT(on.stream.meanSwitchStallSeconds,
              off.stream.meanSwitchStallSeconds);
    EXPECT_GT(on.stream.prefetchesIssued, 0);
    EXPECT_GT(on.stream.prefetchHits, 0);
    EXPECT_EQ(off.stream.prefetchesIssued, 0);
}

TEST(AsyncServing, RejectsImpossibleMemoryConfigs)
{
    ServingConfig cfg = asyncStreamConfig(false);
    cfg.dmaEngines = 0;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    cfg = asyncStreamConfig(false);
    cfg.prefetchDepth = -1;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    cfg = asyncStreamConfig(false);
    cfg.expertRegionBytes = -1;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    // A region that cannot hold a pinned batch deadlocks the async
    // runtime and is rejected up front.
    cfg = asyncStreamConfig(false);
    cfg.batch = 8;
    cfg.expertRegionBytes = static_cast<std::int64_t>(
        2.5 * cfg.expertBase.weightBytes());
    EXPECT_THROW(ServingSimulator(cfg).run(), sim::FatalError);
}
