/**
 * @file
 * Tests for the workload model zoo: parameter counts against the
 * models' published sizes, graph structure of the builders, and the
 * FFT convolution graphs.
 */

#include <gtest/gtest.h>

#include "models/fft_conv.h"
#include "models/llm_config.h"
#include "models/model_zoo.h"
#include "models/transformer_builder.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::models;

namespace {

/** Expect |actual - expected| / expected below @p tol. */
void
expectWithin(double actual, double expected, double tol,
             const std::string &what)
{
    EXPECT_NEAR(actual / expected, 1.0, tol) << what << ": " << actual
                                             << " vs " << expected;
}

} // namespace

TEST(LlmConfig, ParamCountsMatchPublishedSizes)
{
    // Published totals: Llama2-7B 6.74B, Llama2-13B 13.0B, Llama2-70B
    // 69.0B, Llama3.1 8.0B/70.6B/405.9B, Mistral 7.24B, Falcon ~41B,
    // BLOOM 176.2B.
    expectWithin(LlmConfig::llama2_7b().paramCount(), 6.74e9, 0.01,
                 "llama2-7b");
    expectWithin(LlmConfig::llama2_13b().paramCount(), 13.0e9, 0.01,
                 "llama2-13b");
    expectWithin(LlmConfig::llama2_70b().paramCount(), 69.0e9, 0.01,
                 "llama2-70b");
    expectWithin(LlmConfig::llama31_8b().paramCount(), 8.0e9, 0.01,
                 "llama3.1-8b");
    expectWithin(LlmConfig::llama31_70b().paramCount(), 70.6e9, 0.01,
                 "llama3.1-70b");
    expectWithin(LlmConfig::llama31_405b().paramCount(), 405.9e9, 0.01,
                 "llama3.1-405b");
    expectWithin(LlmConfig::mistral7b().paramCount(), 7.24e9, 0.01,
                 "mistral-7b");
    expectWithin(LlmConfig::falcon40b().paramCount(), 41.3e9, 0.03,
                 "falcon-40b");
    expectWithin(LlmConfig::bloom176b().paramCount(), 176.2e9, 0.01,
                 "bloom-176b");
    // LLaVA = Llama2-7B + ~0.3B vision tower.
    std::int64_t delta = LlmConfig::llava15_7b().paramCount() -
                         LlmConfig::llama2_7b().paramCount();
    expectWithin(static_cast<double>(delta), 0.31e9, 0.1, "vit tower");
}

TEST(LlmConfig, SambaCoeIsATrillionParameters)
{
    // 150 Llama2-7B experts: the paper's "trillion total parameters".
    double total = 150.0 *
        static_cast<double>(LlmConfig::llama2_7b().paramCount());
    EXPECT_GT(total, 1.0e12);
    // BF16 weights per expert: ~13.5 GB.
    expectWithin(LlmConfig::llama2_7b().weightBytes(), 13.48e9, 0.01,
                 "expert bytes");
}

TEST(LlmConfig, SparseGptStoresCompressedWeights)
{
    LlmConfig dense = LlmConfig::llama2_13b();
    LlmConfig sparse = LlmConfig::sparseGpt13b();
    EXPECT_EQ(dense.paramCount(), sparse.paramCount());
    EXPECT_NEAR(sparse.weightBytes() / dense.weightBytes(), 0.125, 1e-9);
}

TEST(LlmConfig, KvBytesPerToken)
{
    // Llama2-7B: 2 * 32 layers * 4096 * 2B = 512 KiB per token.
    EXPECT_EQ(LlmConfig::llama2_7b().kvBytesPerToken(), 524288);
    // GQA shrinks the cache 4x on Mistral (8 of 32 KV heads).
    EXPECT_EQ(LlmConfig::mistral7b().kvBytesPerToken(), 524288 / 4);
}

TEST(LlmConfig, ValidationRejectsBadConfigs)
{
    LlmConfig c = LlmConfig::llama2_7b();
    c.numKvHeads = 5; // does not divide 32
    EXPECT_THROW(c.validate(), sim::FatalError);
    c = LlmConfig::llama2_7b();
    c.weightSparsity = 1.0;
    EXPECT_THROW(c.validate(), sim::FatalError);
}

TEST(TransformerBuilder, PrefillGraphShape)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::llama2_7b();
    spec.phase = Phase::Prefill;
    spec.batch = 1;
    spec.seqLen = 4096;
    graph::DataflowGraph g = buildTransformer(spec);

    // ~23 ops per layer x 32 layers plus embedding and head.
    EXPECT_GT(g.numOps(), 32u * 20);
    EXPECT_LT(g.numOps(), 32u * 30);

    // Weight bytes equal the config's accounting.
    expectWithin(g.weightBytes(), spec.model.weightBytes(), 1e-6,
                 "weight bytes");

    // Prefill FLOPs ~ 2 * params * tokens (attention adds more).
    double dense = 2.0 *
        static_cast<double>(spec.model.paramCount()) * 4096;
    EXPECT_GT(g.totalFlops(), dense * 0.95);
    EXPECT_LT(g.totalFlops(), dense * 1.35);
}

TEST(TransformerBuilder, DecodeFlopsAreTokenSized)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::llama2_7b();
    spec.phase = Phase::Decode;
    spec.batch = 1;
    spec.seqLen = 4096;
    graph::DataflowGraph g = buildTransformer(spec);

    double dense = 2.0 * static_cast<double>(spec.model.paramCount());
    EXPECT_GT(g.totalFlops(), dense * 0.9);
    EXPECT_LT(g.totalFlops(), dense * 1.3);
}

TEST(TransformerBuilder, TrainRoughlyTriplesPrefillFlops)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::llama2_7b();
    spec.phase = Phase::Prefill;
    spec.batch = 1;
    spec.seqLen = 2048;
    double fwd = buildTransformer(spec).totalFlops();

    spec.phase = Phase::Train;
    double train = buildTransformer(spec).totalFlops();
    EXPECT_GT(train, 2.6 * fwd);
    EXPECT_LT(train, 3.6 * fwd);
}

TEST(TransformerBuilder, TensorParallelEmitsAllReduce)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::llama2_7b();
    spec.phase = Phase::Decode;
    spec.seqLen = 128;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = buildTransformer(spec);

    int allreduce = 0;
    for (const auto &op : g.ops()) {
        if (op.kind == graph::OpKind::AllReduce)
            ++allreduce;
    }
    EXPECT_EQ(allreduce, 2 * spec.model.numLayers);

    spec.tensorParallel = 1;
    graph::DataflowGraph g1 = buildTransformer(spec);
    for (const auto &op : g1.ops())
        EXPECT_NE(op.kind, graph::OpKind::AllReduce);
}

TEST(TransformerBuilder, FalconParallelBlocksUseOneAllReduce)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::falcon40b();
    spec.phase = Phase::Decode;
    spec.seqLen = 128;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = buildTransformer(spec);
    int allreduce = 0;
    for (const auto &op : g.ops()) {
        if (op.kind == graph::OpKind::AllReduce)
            ++allreduce;
    }
    EXPECT_EQ(allreduce, spec.model.numLayers);
}

TEST(TransformerBuilder, KvCacheAppendedEachLayer)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::mistral7b();
    spec.phase = Phase::Decode;
    spec.seqLen = 2048;
    graph::DataflowGraph g = buildTransformer(spec);

    std::int64_t kv_bytes = 0;
    for (const auto &t : g.tensors()) {
        if (t.kind == graph::TensorKind::KvCache)
            kv_bytes += t.bytes();
    }
    // Cache spans context+1 tokens.
    EXPECT_EQ(kv_bytes, spec.model.kvBytesPerToken() * 2049);
}

TEST(TransformerBuilder, LlavaPrefillIncludesVisionTower)
{
    WorkloadSpec spec;
    spec.model = LlmConfig::llava15_7b();
    spec.phase = Phase::Prefill;
    spec.seqLen = 4096;
    graph::DataflowGraph g = buildTransformer(spec);

    bool has_vit = false;
    for (const auto &op : g.ops()) {
        if (op.name.rfind("vit.", 0) == 0)
            has_vit = true;
    }
    EXPECT_TRUE(has_vit);

    // Decode does not rerun the vision tower.
    spec.phase = Phase::Decode;
    graph::DataflowGraph gd = buildTransformer(spec);
    for (const auto &op : gd.ops())
        EXPECT_NE(op.name.rfind("vit.", 0), 0u);
}

TEST(FftConv, Fig3ExampleMatchesIntensityTest)
{
    graph::DataflowGraph g = buildFig3Example();
    EXPECT_EQ(g.numOps(), 4u);
    EXPECT_DOUBLE_EQ(g.totalFlops(), 537919488.0);
}

TEST(FftConv, MonarchFlopsMatchRadixSum)
{
    FftConvSpec spec;
    spec.seqLen = 1LL << 20;
    spec.radices = {128, 128, 64};
    spec.channels = 64;
    spec.gated = false;
    graph::DataflowGraph g = buildFftConv(spec);

    // GEMM FLOPs: 2 directions * 2*B*C*N*sum(radices).
    double bc = 64.0;
    double n = static_cast<double>(spec.seqLen);
    double gemm = 2.0 * 2.0 * bc * n * (128 + 128 + 64);
    // Elementwise (twiddles, filter) adds a few C*N terms on top.
    EXPECT_GT(g.totalFlops(), gemm);
    EXPECT_LT(g.totalFlops(), gemm * 1.05);
}

TEST(FftConv, SpecValidation)
{
    FftConvSpec spec;
    spec.radices = {128, 128}; // product != 1M
    EXPECT_THROW(spec.validate(), sim::FatalError);
    spec = FftConvSpec{};
    spec.channels = 0;
    EXPECT_THROW(spec.validate(), sim::FatalError);
}

TEST(ModelZoo, PaperSuiteIsComplete)
{
    auto suite = paperBenchmarks();
    ASSERT_EQ(suite.size(), 17u);
    EXPECT_EQ(suite.front().name, "llama7B-4k-prefill");
    EXPECT_EQ(suite.back().name, "FlashFFTConv");
    EXPECT_EQ(suite.back().sockets, 1);

    // Every benchmark builds a valid graph.
    for (const auto &bench : suite) {
        graph::DataflowGraph g = bench.build();
        EXPECT_GT(g.numOps(), 0u) << bench.name;
    }
}

TEST(ModelZoo, Llama31SpecsMatchTableFour)
{
    auto specs = llama31Specs();
    ASSERT_EQ(specs.size(), 3u);
    for (const auto &spec : specs) {
        EXPECT_EQ(spec.seqLen, 8192);
        EXPECT_EQ(spec.tensorParallel, 16);
        EXPECT_EQ(spec.phase, Phase::Decode);
    }
}
