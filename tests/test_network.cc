/**
 * @file
 * Tests for the event-driven link/credit interconnect (sim/network.h)
 * and its cluster integration (coe/fabric.h): topology name tables and
 * config validation, route shapes per topology, credit-exhaustion
 * backpressure (stalls counted, nothing dropped, completion strictly
 * later than with deep buffers), same-tick round-robin arbitration
 * fairness at a shared switch, the zero-network identity contract
 * (fabric knobs are inert until enabled), networked serial-vs-parallel
 * determinism, link-degrade request conservation, and the RDN replay
 * entry point arch::simulatedCongestionFactor.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/rdn.h"
#include "coe/cluster.h"
#include "coe/faults.h"
#include "coe/serving.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/network.h"
#include "sim/ticks.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** Cluster config used by the fabric integration tests (same shape as
 *  the test_cluster golden helper). */
ClusterConfig
clusterConfig(int nodes)
{
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.dispatch = DispatchPolicy::RoundRobin;
    cfg.placement = PlacementPolicy::FullReplication;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 400;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.seed = 11;
    return cfg;
}

/** Strict result equality: every integer counter and every derived
 *  double that the cluster goldens pin, plus the network counters. */
void
expectClusterIdentical(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_EQ(a.stream.completed, b.stream.completed);
    EXPECT_EQ(a.stream.batches, b.stream.batches);
    EXPECT_EQ(a.stream.shed, b.stream.shed);
    EXPECT_EQ(a.stream.lost, b.stream.lost);
    EXPECT_DOUBLE_EQ(a.stream.p50LatencySeconds,
                     b.stream.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p95LatencySeconds,
                     b.stream.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p99LatencySeconds,
                     b.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.maxLatencySeconds,
                     b.stream.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.makespanSeconds, b.stream.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.stream.throughputRequestsPerSec,
                     b.stream.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.stream.meanQueueDepth, b.stream.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.stream.maxQueueDepth, b.stream.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.stream.meanBatchOccupancy,
                     b.stream.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.redispatched, b.redispatched);
    EXPECT_EQ(a.networkMessages, b.networkMessages);
    EXPECT_EQ(a.networkFlits, b.networkFlits);
    EXPECT_EQ(a.networkCreditStalls, b.networkCreditStalls);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        EXPECT_EQ(a.nodes[n].dispatched, b.nodes[n].dispatched)
            << "node " << n;
        EXPECT_EQ(a.nodes[n].completed, b.nodes[n].completed)
            << "node " << n;
        EXPECT_EQ(a.nodes[n].batches, b.nodes[n].batches)
            << "node " << n;
    }
}

/** Serial vs parallel: same as above except the two cluster-wide
 *  running means (merge-order sensitive) are compared loosely. */
void
expectClusterEqualAcrossThreads(const ClusterResult &a,
                                const ClusterResult &b)
{
    expectClusterIdentical(a, b);
    EXPECT_NEAR(a.stream.meanLatencySeconds, b.stream.meanLatencySeconds,
                1e-9 * (1.0 + a.stream.meanLatencySeconds));
}

} // namespace

// ----------------------------------------------- names & validation

TEST(NetworkNames, TopologyRoundTripAndAliases)
{
    for (sim::Topology t :
         {sim::Topology::Star, sim::Topology::Mesh2D,
          sim::Topology::Torus2D, sim::Topology::FatTree})
        EXPECT_EQ(sim::topologyFromName(sim::topologyName(t)), t);
    EXPECT_EQ(sim::topologyFromName("mesh2d"), sim::Topology::Mesh2D);
    EXPECT_EQ(sim::topologyFromName("torus2d"), sim::Topology::Torus2D);
    EXPECT_EQ(sim::topologyFromName("fattree"), sim::Topology::FatTree);
    EXPECT_THROW(sim::topologyFromName("ring"), sim::FatalError);
}

TEST(NetworkNames, ConfigValidationRejectsNonsense)
{
    sim::NetworkConfig good;
    good.endpoints = 4;
    EXPECT_NO_THROW(sim::validateNetworkConfig(good));

    auto expect_fatal = [](auto mutate) {
        sim::NetworkConfig bad;
        bad.endpoints = 4;
        mutate(bad);
        EXPECT_THROW(sim::validateNetworkConfig(bad), sim::FatalError);
    };
    expect_fatal([](sim::NetworkConfig &c) { c.endpoints = 0; });
    expect_fatal([](sim::NetworkConfig &c) { c.linkBytesPerSec = 0.0; });
    expect_fatal([](sim::NetworkConfig &c) { c.linkLatency = -1; });
    expect_fatal([](sim::NetworkConfig &c) { c.bufferFlits = 0; });
    expect_fatal([](sim::NetworkConfig &c) { c.flitBytes = 0.0; });
    expect_fatal([](sim::NetworkConfig &c) { c.maxFlitsPerMessage = 0; });
    expect_fatal([](sim::NetworkConfig &c) { c.fatTreeSpines = 0; });
}

TEST(NetworkNames, FabricValidationOnlyBitesWhenEnabled)
{
    coe::FabricConfig off;
    off.linkGbps = -5.0; // inert: the fabric is disabled
    EXPECT_NO_THROW(coe::validateFabricConfig(off));

    coe::FabricConfig on;
    on.enabled = true;
    EXPECT_NO_THROW(coe::validateFabricConfig(on));
    on.linkGbps = -5.0;
    EXPECT_THROW(coe::validateFabricConfig(on), sim::FatalError);
}

// ------------------------------------------------------------ routes

TEST(NetworkRoute, StarAlwaysTwoHopsThroughTheHub)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.endpoints = 4;
    sim::Network net(eq, cfg);
    // 4 endpoints, one hub: a link each way per endpoint.
    EXPECT_EQ(net.linkCount(), 8);
    for (int s = 0; s < 4; ++s)
        for (int d = 0; d < 4; ++d) {
            if (s == d)
                continue;
            const std::vector<int> &path = net.route(s, d);
            ASSERT_EQ(path.size(), 2u) << s << "->" << d;
            EXPECT_EQ(net.linkTo(path[0]), 4);   // into the hub
            EXPECT_EQ(net.linkFrom(path[1]), 4); // out of the hub
        }
    EXPECT_EQ(net.nodeLabel(0), "ep0");
    EXPECT_EQ(net.nodeLabel(4), "sw0");
    EXPECT_THROW(net.route(0, 4), sim::FatalError); // hub is no endpoint
}

TEST(NetworkRoute, MeshUsesXYDimensionOrder)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.topology = sim::Topology::Mesh2D;
    cfg.endpoints = 9;
    cfg.meshCols = 3;
    sim::Network net(eq, cfg);
    // Corner to corner on a 3x3: 2 X hops then 2 Y hops.
    const std::vector<int> &path = net.route(0, 8);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(net.linkTo(path[0]), 1); // x first
    EXPECT_EQ(net.linkTo(path[1]), 2);
    EXPECT_EQ(net.linkTo(path[2]), 5); // then y
    EXPECT_EQ(net.linkTo(path[3]), 8);
}

TEST(NetworkRoute, TorusWrapShortensTheLongWay)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.topology = sim::Topology::Torus2D;
    cfg.endpoints = 9;
    cfg.meshCols = 3;
    sim::Network net(eq, cfg);
    // 0 -> 2 is two hops on a mesh but one wrap hop on the torus.
    EXPECT_EQ(net.route(0, 2).size(), 1u);
    EXPECT_EQ(net.route(0, 6).size(), 1u); // same in Y
}

TEST(NetworkRoute, FatTreeStaysInTheLeafWhenItCan)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.topology = sim::Topology::FatTree;
    cfg.endpoints = 8;
    cfg.fatTreeRadix = 4;
    cfg.fatTreeSpines = 2;
    sim::Network net(eq, cfg);
    EXPECT_EQ(net.route(0, 1).size(), 2u); // same leaf: up, down
    EXPECT_EQ(net.route(0, 4).size(), 4u); // cross leaf: via a spine
}

// ------------------------------------------------- delivery & credits

TEST(NetworkDelivery, LocalSendTouchesNoLink)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.endpoints = 2;
    sim::Network net(eq, cfg);
    bool delivered = false;
    net.send(0, 0, 1e9, [&delivered]() { delivered = true; });
    EXPECT_EQ(net.messagesInFlight(), 1);
    eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(net.messagesDelivered(), 1);
    EXPECT_EQ(net.flitsDelivered(), 0); // no link was crossed
    EXPECT_EQ(net.creditStalls(), 0);
}

TEST(NetworkDelivery, MessageArrivesWholeAndInFlightDrains)
{
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.endpoints = 2;
    cfg.flitBytes = 64.0;
    sim::Network net(eq, cfg);
    sim::Tick done_at = 0;
    net.send(0, 1, 64.0 * 10, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(net.messagesDelivered(), 1);
    EXPECT_EQ(net.messagesInFlight(), 0);
    EXPECT_EQ(net.flitsDelivered(), 10);
    // At least two hop latencies (ep -> hub -> ep) plus serialization.
    EXPECT_GE(done_at, 2 * cfg.linkLatency);
}

TEST(NetworkCredit, ExhaustionStallsButDeliversEverything)
{
    // 40 flits through 2-deep buffers: the transmitter must stall on
    // credits (counted), yet every flit lands. The same message
    // through 64-deep buffers never stalls and finishes strictly
    // earlier — the credit loop (return delay == link latency) is the
    // pacing mechanism, not a drop mechanism.
    const double bytes = 64.0 * 40;
    auto run_with_buffer = [&](int buffer_flits, std::int64_t &stalls,
                               std::int64_t &flits) {
        sim::EventQueue eq;
        sim::NetworkConfig cfg;
        cfg.endpoints = 2;
        cfg.flitBytes = 64.0;
        cfg.bufferFlits = buffer_flits;
        sim::Network net(eq, cfg);
        sim::Tick done_at = 0;
        net.send(0, 1, bytes, [&]() { done_at = eq.now(); });
        eq.run();
        stalls = net.creditStalls();
        flits = net.flitsDelivered();
        return done_at;
    };
    std::int64_t shallow_stalls = 0, shallow_flits = 0;
    std::int64_t deep_stalls = 0, deep_flits = 0;
    sim::Tick shallow_done =
        run_with_buffer(2, shallow_stalls, shallow_flits);
    sim::Tick deep_done = run_with_buffer(64, deep_stalls, deep_flits);

    EXPECT_EQ(shallow_flits, 40); // nothing dropped
    EXPECT_EQ(deep_flits, 40);
    EXPECT_GT(shallow_stalls, 0);
    EXPECT_EQ(deep_stalls, 0);
    EXPECT_GT(shallow_done, deep_done);
}

TEST(NetworkCredit, DegradedLinkAdvertisesItsStretchWhenIdle)
{
    // The capacity-aware congestion signal: an idle degraded path must
    // cost more than an idle healthy one, otherwise a topology-aware
    // dispatcher keeps trickling traffic onto the sick link until the
    // queue builds (and each trickle head-of-line blocks shared hops).
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.endpoints = 3;
    sim::Network net(eq, cfg);
    EXPECT_DOUBLE_EQ(net.pathCongestion(0, 1), 0.0);
    net.setEndpointLinkFactor(1, 40.0);
    EXPECT_GT(net.pathCongestion(0, 1), net.pathCongestion(0, 2));
    net.setEndpointLinkFactor(1, 1.0); // heal
    EXPECT_DOUBLE_EQ(net.pathCongestion(0, 1), 0.0);
    EXPECT_THROW(net.setEndpointLinkFactor(1, 0.5), sim::FatalError);
    EXPECT_THROW(net.setEndpointLinkFactor(9, 2.0), sim::FatalError);
}

TEST(NetworkArbitration, SameTickSendersInterleaveAtASharedSwitch)
{
    // Two equal 10-flit messages converge on ep2's hub link in the
    // same tick. Per-input-port round-robin must interleave them: when
    // the first message completes, the other has landed all but a
    // couple of its flits (the loser of the final arbitration round is
    // still crossing the wire). A single shared FIFO would drain one
    // message entirely first — 10 flits delivered at first completion.
    sim::EventQueue eq;
    sim::NetworkConfig cfg;
    cfg.endpoints = 3;
    cfg.flitBytes = 64.0;
    sim::Network net(eq, cfg);
    std::int64_t flits_at_first_completion = -1;
    auto on_done = [&]() {
        if (flits_at_first_completion < 0)
            flits_at_first_completion = net.flitsDelivered();
    };
    eq.schedule(0, [&]() {
        net.send(0, 2, 64.0 * 10, on_done);
        net.send(1, 2, 64.0 * 10, on_done);
    }, "inject");
    eq.run();
    EXPECT_EQ(net.flitsDelivered(), 20);
    EXPECT_GE(flits_at_first_completion, 18);
}

// ------------------------------------------------ cluster integration

TEST(FabricCluster, DisabledFabricKnobsAreInert)
{
    // The zero-network identity contract: setting every fabric knob
    // while leaving enabled == false must not perturb a single metric
    // relative to a config that never mentions the fabric.
    ClusterConfig plain = clusterConfig(3);
    ClusterConfig knobs = clusterConfig(3);
    knobs.fabric.topology = sim::Topology::FatTree;
    knobs.fabric.linkGbps = 1.0;
    knobs.fabric.linkLatencyUs = 500.0;
    knobs.fabric.linkBufferFlits = 2;
    knobs.fabric.requestPayloadBytes = 1e9;
    ASSERT_FALSE(knobs.fabric.enabled);

    ClusterResult a = ClusterSimulator(plain).run();
    ClusterResult b = ClusterSimulator(knobs).run();
    expectClusterIdentical(a, b);
    EXPECT_EQ(a.networkMessages, 0);
    EXPECT_DOUBLE_EQ(b.networkMaxLinkUtilization, 0.0);
}

TEST(FabricCluster, NetworkedRunMovesEveryRequestOverTheWire)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.fabric.enabled = true;
    ClusterResult r = ClusterSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed + r.stream.shed + r.stream.lost, 400);
    // Every dispatch is one hub -> node message.
    EXPECT_GE(r.networkMessages, 400);
    EXPECT_GT(r.networkFlits, 0);
    EXPECT_GT(r.networkMaxLinkUtilization, 0.0);
    EXPECT_GE(r.networkMaxLinkUtilization,
              r.networkMeanLinkUtilization);
}

TEST(FabricCluster, NetworkedParallelMatchesSerial)
{
    for (sim::Topology topo :
         {sim::Topology::Star, sim::Topology::Mesh2D}) {
        ClusterConfig cfg = clusterConfig(3);
        cfg.fabric.enabled = true;
        cfg.fabric.topology = topo;
        ClusterResult serial = ClusterSimulator(cfg).run();
        ClusterConfig par = cfg;
        par.threads = 3;
        ClusterResult parallel = ClusterSimulator(par).run();
        SCOPED_TRACE(sim::topologyName(topo));
        EXPECT_GT(serial.networkMessages, 0);
        expectClusterEqualAcrossThreads(serial, parallel);
    }
}

TEST(FabricCluster, TopologyAwareDispatchNeedsTheFabric)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.dispatch = DispatchPolicy::TopologyAware;
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    cfg.fabric.enabled = true;
    EXPECT_NO_THROW(ClusterSimulator{cfg});
}

TEST(FabricCluster, LinkDegradeScheduleNeedsTheFabric)
{
    ClusterConfig cfg = clusterConfig(3);
    cfg.faults = std::make_shared<std::vector<FaultEvent>>(
        std::vector<FaultEvent>{
            {1.0, FaultKind::LinkDegrade, 1, 40.0, 4.0}});
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    cfg.fabric.enabled = true;
    EXPECT_NO_THROW(ClusterSimulator{cfg});
}

TEST(FabricCluster, LinkDegradeConservesRequests)
{
    // A mid-run link degrade slows traffic but must not leak requests:
    // everything that arrived is completed, shed, or counted lost.
    ClusterConfig cfg = clusterConfig(4);
    cfg.fabric.enabled = true;
    cfg.fabric.linkGbps = 1.0; // thin links so the degrade bites
    cfg.faults = std::make_shared<std::vector<FaultEvent>>(
        std::vector<FaultEvent>{
            {1.0, FaultKind::LinkDegrade, 2, 40.0, 3.0}});
    ClusterResult r = ClusterSimulator(cfg).run();
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(r.stream.completed + r.stream.shed + r.stream.lost, 400);
    EXPECT_EQ(r.faultsInjected, 1);
    EXPECT_EQ(r.crashes, 0);
}

// -------------------------------------------------- RDN replay bridge

TEST(RdnReplay, EmptyOrIdleFlowSetsCostNothing)
{
    EXPECT_DOUBLE_EQ(
        arch::simulatedCongestionFactor({}, 4, 4, 1e9), 1.0);
    // Zero-rate and self flows are skipped, not fatal.
    std::vector<arch::MeshFlow> idle = {
        {{0, 0}, {3, 3}, 0.0},
        {{1, 1}, {1, 1}, 5e9},
    };
    EXPECT_DOUBLE_EQ(
        arch::simulatedCongestionFactor(idle, 4, 4, 1e9), 1.0);
}

TEST(RdnReplay, OversubscriptionDilatesMonotonically)
{
    // Eight flows funneling through column x=0 at 4x the link rate
    // must dilate well past an undersubscribed copy of the same set.
    auto funnel = [](double rate) {
        std::vector<arch::MeshFlow> flows;
        for (int y = 0; y < 8; ++y)
            flows.push_back({{0, y}, {3, y}, rate});
        return flows;
    };
    const double link_bw = 1e9;
    double light =
        arch::simulatedCongestionFactor(funnel(1e8), 4, 8, link_bw);
    double heavy =
        arch::simulatedCongestionFactor(funnel(4e9), 4, 8, link_bw);
    EXPECT_GE(light, 1.0);
    EXPECT_GT(heavy, light);
    EXPECT_GT(heavy, 1.5);
    EXPECT_THROW(
        arch::simulatedCongestionFactor(funnel(1e9), 0, 8, link_bw),
        sim::FatalError);
}
