/**
 * @file
 * Tests for the PCU tail-unit numerics: BF16 conversion with
 * round-to-nearest-even and stochastic rounding, INT8 quantization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/numerics.h"

using namespace sn40l;
using namespace sn40l::arch;

TEST(Numerics, Bf16RoundTripExactForRepresentableValues)
{
    // Values with <= 8 significand bits survive the round trip.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 96.0f, -0.15625f,
                    1.5f, 255.0f}) {
        EXPECT_EQ(quantizeBf16(v), v) << v;
    }
}

TEST(Numerics, RneRoundsToNearest)
{
    // The midpoint between 1.0 and 1+2^-7 is 1+2^-8: values below it
    // round down, values above round up.
    float below_mid = 1.0f + 1.0f / 512.0f;
    EXPECT_EQ(quantizeBf16(below_mid), 1.0f);

    float above_mid = 1.0f + 3.0f / 512.0f;
    EXPECT_EQ(quantizeBf16(above_mid), 1.0f + kBf16Epsilon);
}

TEST(Numerics, RneTiesGoToEven)
{
    // Exactly halfway between 1.0 (even significand) and 1+2^-7:
    // rounds down to the even value.
    float tie = 1.0f + 1.0f / 256.0f;
    EXPECT_EQ(quantizeBf16(tie), 1.0f);

    // Halfway between 1+2^-7 (odd significand) and 1+2^-6 (even):
    // rounds up.
    float odd_base = 1.0f + kBf16Epsilon;
    float tie2 = odd_base + 1.0f / 256.0f;
    EXPECT_EQ(quantizeBf16(tie2), 1.0f + 2 * kBf16Epsilon);
}

TEST(Numerics, SpecialValuesSurvive)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(bf16ToFp32(fp32ToBf16Rne(inf)), inf);
    EXPECT_EQ(bf16ToFp32(fp32ToBf16Rne(-inf)), -inf);
    float nan = std::nanf("");
    EXPECT_TRUE(std::isnan(bf16ToFp32(fp32ToBf16Rne(nan))));
}

TEST(Numerics, StochasticRoundingIsUnbiased)
{
    // E[rounded] should equal the input; RNE is deterministic and
    // biased toward one neighbour for off-midpoint values.
    sim::Rng rng(99);
    float value = 1.0f + 0.3f * kBf16Epsilon; // 30% toward the upper
    const int n = 40000;
    double sum = 0.0;
    int ups = 0;
    for (int i = 0; i < n; ++i) {
        float r = bf16ToFp32(fp32ToBf16Stochastic(value, rng));
        sum += r;
        if (r > 1.0f)
            ++ups;
    }
    double mean = sum / n;
    EXPECT_NEAR(mean, value, kBf16Epsilon * 0.02);
    // Rounds up about 30% of the time.
    EXPECT_NEAR(static_cast<double>(ups) / n, 0.3, 0.02);

    // RNE always picks the same neighbour.
    EXPECT_EQ(quantizeBf16(value), 1.0f);
}

TEST(Numerics, StochasticMatchesRneForExactValues)
{
    sim::Rng rng(5);
    for (float v : {1.0f, -2.5f, 0.25f}) {
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(bf16ToFp32(fp32ToBf16Stochastic(v, rng)), v);
    }
}

TEST(Numerics, Int8QuantizationClampsAndInverts)
{
    float scale = 0.1f;
    EXPECT_EQ(quantizeInt8(1.0f, scale), 10);
    EXPECT_EQ(quantizeInt8(-1.27f, scale), -13);
    EXPECT_EQ(quantizeInt8(1000.0f, scale), 127);  // clamped
    EXPECT_EQ(quantizeInt8(-1000.0f, scale), -127);
    EXPECT_NEAR(dequantizeInt8(quantizeInt8(0.73f, scale), scale), 0.73f,
                scale / 2);
}
