/**
 * @file
 * Parameterized property sweeps (gtest TEST_P): invariants that must
 * hold across whole families of configurations — every benchmark in
 * the suite, every bank count, every TP degree, every platform/batch
 * combination, every allocator alignment.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/pmu.h"
#include "coe/serving.h"
#include "compiler/compiler.h"
#include "mem/free_list_allocator.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "sim/rng.h"

using namespace sn40l;

// ---------------------------------------------------------------------
// Sweep 1: every Fig-10 benchmark satisfies the core fusion claims.
// ---------------------------------------------------------------------

class BenchmarkSweep : public ::testing::TestWithParam<int>
{
  protected:
    models::Benchmark bench() const
    {
        return models::paperBenchmarks()[GetParam()];
    }
};

TEST_P(BenchmarkSweep, GraphValidatesAndHasWork)
{
    graph::DataflowGraph g = bench().build();
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.totalFlops(), 0.0);
    EXPECT_GT(g.weightBytes(), 0.0);
}

TEST_P(BenchmarkSweep, FusedNeverSlowerAndLaunchesFewer)
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    graph::DataflowGraph g = bench().build();
    auto unfused = runtime::runWorkload(g, node, bench().sockets,
                                        runtime::RunConfig::Unfused);
    auto fused = runtime::runWorkload(g, node, bench().sockets,
                                      runtime::RunConfig::FusedHO);
    EXPECT_LT(fused.seconds(), unfused.seconds());
    EXPECT_LT(fused.program.totalLaunches,
              unfused.program.totalLaunches);
}

TEST_P(BenchmarkSweep, MemoryPlanFitsTheSocket)
{
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    graph::DataflowGraph g = bench().build();
    compiler::CompileOptions options;
    options.fusion.tensorParallel = bench().sockets;
    compiler::Program prog = compiler::compile(g, chip, options);
    EXPECT_LE(prog.hbmResidentBytes,
              static_cast<double>(chip.hbmBytes));
    EXPECT_LE(prog.ddrResidentBytes,
              static_cast<double>(chip.ddrBytes));
}

TEST_P(BenchmarkSweep, KernelTrafficConservesGraphTraffic)
{
    // The sum of per-kernel boundary traffic in unfused mode equals
    // the per-op traffic of the graph (nothing lost or invented).
    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    graph::DataflowGraph g = bench().build();
    compiler::FusionOptions opt;
    opt.mode = compiler::ExecMode::RduUnfused;
    opt.tensorParallel = bench().sockets;
    auto kernels = compiler::partitionGraph(g, chip, opt);

    double kernel_bytes = 0.0;
    for (const auto &k : kernels)
        kernel_bytes += k.offChipBytes();
    double op_bytes = 0.0;
    for (const auto &op : g.ops())
        op_bytes += g.opReadBytes(op.id) + g.opWriteBytes(op.id);
    EXPECT_NEAR(kernel_bytes, op_bytes, op_bytes * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, BenchmarkSweep, ::testing::Range(0, 17),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name = models::paperBenchmarks()[info.param].name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: diagonal striping is conflict-free for every bank count.
// ---------------------------------------------------------------------

class BankSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BankSweep, DiagonalStripeConflictFreeBothDirections)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    cfg.pmuBanks = GetParam();
    arch::Pmu pmu(cfg, "pmu");
    const int lanes = GetParam();
    const std::int64_t cols = 4L * GetParam();

    for (int fixed = 0; fixed < 4; ++fixed) {
        std::vector<std::int64_t> row, col;
        for (int i = 0; i < lanes; ++i) {
            row.push_back(pmu.diagonalStripeAddr(fixed, i, cols, 8));
            col.push_back(pmu.diagonalStripeAddr(i, fixed, cols, 8));
        }
        EXPECT_EQ(pmu.access(row).cycles, 1) << "row, fixed=" << fixed;
        EXPECT_EQ(pmu.access(col).cycles, 1) << "col, fixed=" << fixed;
    }
}

TEST_P(BankSweep, LinearLayoutColumnReadSerializesByBankCount)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    cfg.pmuBanks = GetParam();
    arch::Pmu pmu(cfg, "pmu");
    const int lanes = GetParam();
    const std::int64_t cols = 4L * GetParam();

    std::vector<std::int64_t> col;
    for (int i = 0; i < lanes; ++i)
        col.push_back(arch::Pmu::linearAddr(i, 1, cols, 8));
    EXPECT_EQ(pmu.access(col).cycles, GetParam());
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BankSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

// ---------------------------------------------------------------------
// Sweep 3: decode latency is monotone non-increasing in TP degree.
// ---------------------------------------------------------------------

class TpSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TpSweep, DecodeScalesWithSockets)
{
    int tp = GetParam();
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 1024;
    spec.tensorParallel = tp;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::NodeConfig node = arch::NodeConfig::sn40lNode(std::max(tp, 1));
    double t = runtime::decodeSecondsPerToken(g, node, tp);

    // Against half the sockets (where applicable), more sockets are
    // never slower and at most linearly faster.
    if (tp >= 2) {
        models::WorkloadSpec half = spec;
        half.tensorParallel = tp / 2;
        graph::DataflowGraph gh = models::buildTransformer(half);
        arch::NodeConfig nh = arch::NodeConfig::sn40lNode(tp / 2);
        double th = runtime::decodeSecondsPerToken(gh, nh, tp / 2);
        EXPECT_LT(t, th);
        EXPECT_GT(t, th / 2.2);
    } else {
        EXPECT_GT(t, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------
// Sweep 4: serving invariants across platform x batch.
// ---------------------------------------------------------------------

using PlatformBatch = std::tuple<coe::Platform, int>;

class ServingSweep : public ::testing::TestWithParam<PlatformBatch>
{
};

TEST_P(ServingSweep, BreakdownIsConsistent)
{
    coe::ServingConfig cfg;
    cfg.platform = std::get<0>(GetParam());
    cfg.batch = std::get<1>(GetParam());
    cfg.numExperts = 100;
    cfg.requests = 40;

    coe::ServingResult r = coe::ServingSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    EXPECT_GE(r.perBatch.routerSeconds, 0.0);
    EXPECT_GE(r.perBatch.switchSeconds, 0.0);
    EXPECT_GT(r.perBatch.execSeconds, 0.0);
    EXPECT_NEAR(r.perBatch.total(),
                r.perBatch.routerSeconds + r.perBatch.switchSeconds +
                    r.perBatch.execSeconds,
                1e-12);
    EXPECT_GE(r.missRate, 0.0);
    EXPECT_LE(r.missRate, 1.0);
    EXPECT_GE(r.perBatch.switchShare(), 0.0);
    EXPECT_LE(r.perBatch.switchShare(), 1.0);
    // Batch latency scales at least with the per-prompt exec time.
    EXPECT_GE(r.perBatch.execSeconds,
              r.expertSecondsPerPrompt * cfg.batch * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServingSweep,
    ::testing::Combine(::testing::Values(coe::Platform::Sn40l,
                                         coe::Platform::DgxA100,
                                         coe::Platform::DgxH100),
                       ::testing::Values(1, 4, 8)));

// ---------------------------------------------------------------------
// Sweep 5: allocator invariants across alignments.
// ---------------------------------------------------------------------

class AlignmentSweep : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(AlignmentSweep, AllocationsAlignedAndNonOverlapping)
{
    std::int64_t align = GetParam();
    mem::FreeListAllocator alloc(1 << 20, align);
    sim::Rng rng(17);
    std::vector<std::pair<std::int64_t, std::int64_t>> live;

    for (int i = 0; i < 500; ++i) {
        if (live.empty() || rng.uniformDouble() < 0.65) {
            std::int64_t size =
                static_cast<std::int64_t>(rng.uniformInt(5000) + 1);
            auto off = alloc.allocate(size);
            if (!off)
                continue;
            EXPECT_EQ(*off % align, 0);
            for (const auto &blk : live) {
                bool overlap = *off < blk.first + blk.second &&
                               blk.first < *off + size;
                ASSERT_FALSE(overlap);
            }
            live.emplace_back(*off, size);
        } else {
            std::size_t idx = rng.uniformInt(live.size());
            alloc.free(live[idx].first);
            live.erase(live.begin() + static_cast<long>(idx));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignmentSweep,
                         ::testing::Values(1, 64, 256, 4096));
