/**
 * @file
 * Tests for the PCU compute model and the PMU banked scratchpad,
 * including the diagonal-striping property that makes transpose reads
 * conflict-free (Section IV-B).
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/chip_config.h"
#include "arch/pcu.h"
#include "arch/pmu.h"
#include "sim/log.h"

using namespace sn40l;
using arch::ChipConfig;
using arch::Pcu;
using arch::Pmu;

TEST(ChipConfig, TableTwoParameters)
{
    ChipConfig cfg = ChipConfig::sn40l();
    EXPECT_DOUBLE_EQ(cfg.peakBf16Flops, 638e12);
    EXPECT_EQ(cfg.pcuCount, 1040);
    EXPECT_EQ(cfg.pmuCount, 1040);
    EXPECT_EQ(cfg.sramBytes, 520LL * 1024 * 1024);
    EXPECT_EQ(cfg.hbmBytes, 64LL * 1024 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(cfg.hbmBandwidth, 1.8e12);
    EXPECT_DOUBLE_EQ(cfg.ddrBandwidth, 200e9);
    EXPECT_EQ(cfg.diesPerSocket, 2);
    EXPECT_LT(cfg.clockGhz, 2.0); // paper: "< 2 GHz"
}

TEST(ChipConfig, DerivedQuantities)
{
    ChipConfig cfg = ChipConfig::sn40l();
    EXPECT_NEAR(cfg.flopsPerPcu(), 638e12 / 1040, 1.0);
    EXPECT_EQ(cfg.sramPerPmu(), 512 * 1024);
    EXPECT_EQ(cfg.pmuBankBytes(), 32 * 1024);
    EXPECT_EQ(cfg.tileCount(), 4);
    EXPECT_EQ(cfg.pcusPerTile(), 260);
}

TEST(ChipConfig, NodeAggregates)
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    EXPECT_EQ(node.totalHbmBytes(), 8 * 64LL * 1024 * 1024 * 1024);
    EXPECT_EQ(node.totalDdrBytes(),
              8 * static_cast<std::int64_t>(1.5 * 1024) * 1024 * 1024 *
                  1024);
    // Paper: models load DDR->HBM at over 1 TB/s in a single node.
    EXPECT_GT(node.ddrToHbmBandwidth(), 1e12);
}

TEST(ChipConfig, ValidationCatchesNonsense)
{
    ChipConfig cfg = ChipConfig::sn40l();
    cfg.hbmEfficiency = 1.5;
    EXPECT_THROW(cfg.validate(), sim::FatalError);
    cfg = ChipConfig::sn40l();
    cfg.pmuBanks = 12; // not a power of two
    EXPECT_THROW(cfg.validate(), sim::FatalError);
}

TEST(Pcu, ThroughputByClass)
{
    ChipConfig cfg = ChipConfig::sn40l();
    double systolic = Pcu::throughput(cfg, graph::OpClass::Systolic);
    double simd = Pcu::throughput(cfg, graph::OpClass::Simd);
    EXPECT_GT(systolic, simd);
    EXPECT_DOUBLE_EQ(Pcu::throughput(cfg, graph::OpClass::Memory), 0.0);
    // 1040 PCUs at systolic efficiency reach ~85% of chip peak.
    EXPECT_NEAR(systolic * cfg.pcuCount, cfg.peakBf16Flops *
                cfg.systolicEfficiency, 1e6);
}

TEST(Pcu, SystolicTileCyclesScaleWithWork)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pcu pcu(cfg);
    std::int64_t small = pcu.systolicTileCycles(32, 6, 64);
    std::int64_t big = pcu.systolicTileCycles(64, 12, 64);
    EXPECT_GT(big, 2 * small - cfg.simdStages * 4);
    EXPECT_THROW(pcu.systolicTileCycles(0, 1, 1), sim::SimPanic);
}

TEST(Pcu, SimdFullyPipelined)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pcu pcu(cfg);
    // One vector per cycle plus drain.
    EXPECT_EQ(pcu.simdCycles(cfg.vectorLanes * 100),
              100 + cfg.simdStages);
    EXPECT_GT(pcu.reduceCycles(1024), pcu.simdCycles(1024));
}

TEST(Pmu, DefaultBankInterleavingIsConflictFreeForUnitStride)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    // 16 consecutive 8-byte words -> 16 distinct banks.
    std::vector<std::int64_t> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(i * 8);
    auto res = pmu.access(addrs);
    EXPECT_EQ(res.cycles, 1);
    EXPECT_EQ(res.conflicts, 0);
    EXPECT_EQ(res.accepted, 16);
}

TEST(Pmu, LargeStrideConflictsAllLanes)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    // Stride of banks*8 bytes: every lane lands in bank 0.
    std::vector<std::int64_t> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(static_cast<std::int64_t>(i) * cfg.pmuBanks * 8);
    auto res = pmu.access(addrs);
    EXPECT_EQ(res.cycles, 16);
    EXPECT_EQ(res.conflicts, 15);
}

TEST(Pmu, ProgrammableBankBitsFixStridedConflicts)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    std::vector<std::int64_t> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(static_cast<std::int64_t>(i) * cfg.pmuBanks * 8);
    // Move the bank bits up to the stride bits (Section VII: bank
    // conflicts eliminated via programmable bank bits).
    pmu.setBankBits({7, 8, 9, 10});
    auto res = pmu.access(addrs);
    EXPECT_EQ(res.cycles, 1);
    EXPECT_EQ(res.conflicts, 0);
}

TEST(Pmu, AddressPredicationDropsForeignAddresses)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    pmu.setValidRange(0, 128);
    std::vector<std::int64_t> addrs = {0, 8, 128, 256};
    auto res = pmu.access(addrs);
    EXPECT_EQ(res.accepted, 2);
    EXPECT_TRUE(pmu.accepts(0));
    EXPECT_FALSE(pmu.accepts(128));
}

TEST(Pmu, TwoPmusPartitionOneLogicalTensor)
{
    // An interleaved logical tensor: each PMU accepts its own range;
    // together they accept every lane exactly once.
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu lo(cfg, "lo"), hi(cfg, "hi");
    lo.setValidRange(0, 1024);
    hi.setValidRange(1024, 2048);
    std::vector<std::int64_t> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(i * 64);
    auto rlo = lo.access(addrs);
    auto rhi = hi.access(addrs);
    EXPECT_EQ(rlo.accepted + rhi.accepted, 32);
}

namespace {

/** Gather bank indices for one row / one column under a layout. */
std::pair<int, int>
rowColConflictCycles(Pmu &pmu, bool striped, int lanes, std::int64_t cols)
{
    std::vector<std::int64_t> row_addrs, col_addrs;
    for (int i = 0; i < lanes; ++i) {
        if (striped) {
            row_addrs.push_back(pmu.diagonalStripeAddr(5, i, cols, 8));
            col_addrs.push_back(pmu.diagonalStripeAddr(i, 5, cols, 8));
        } else {
            row_addrs.push_back(Pmu::linearAddr(5, i, cols, 8));
            col_addrs.push_back(Pmu::linearAddr(i, 5, cols, 8));
        }
    }
    int row_cycles = pmu.access(row_addrs).cycles;
    int col_cycles = pmu.access(col_addrs).cycles;
    return {row_cycles, col_cycles};
}

} // namespace

TEST(Pmu, DiagonalStripingMakesTransposeConflictFree)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    const int lanes = cfg.pmuBanks;
    const std::int64_t cols = 64; // multiple of bank count

    auto linear = rowColConflictCycles(pmu, false, lanes, cols);
    auto striped = rowColConflictCycles(pmu, true, lanes, cols);

    // Linear layout: row access is conflict-free, column access
    // serializes on one bank.
    EXPECT_EQ(linear.first, 1);
    EXPECT_EQ(linear.second, lanes);

    // Diagonal striping: both directions conflict-free — the paper's
    // "read the same tensor in regular and transposed format at full
    // bandwidth".
    EXPECT_EQ(striped.first, 1);
    EXPECT_EQ(striped.second, 1);
}

TEST(Pmu, BankBitConfigurationValidated)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Pmu pmu(cfg, "pmu0");
    EXPECT_THROW(pmu.setBankBits({1, 2}), sim::FatalError);      // too few
    EXPECT_THROW(pmu.setBankBits({1, 2, 3, 63}), sim::FatalError);
    EXPECT_THROW(pmu.setValidRange(10, 10), sim::FatalError);
}
