/**
 * @file
 * Tests for the RDN mesh: dimension-order routing, multicast trees,
 * flow/congestion accounting, sequence-ID reordering, and credit-based
 * flow control (Section IV-C).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/rdn.h"
#include "sim/log.h"
#include "sim/rng.h"

using namespace sn40l;
using arch::Coord;
using arch::CreditLink;
using arch::RdnMesh;
using arch::ReorderBuffer;

TEST(RdnMesh, DimensionOrderRouteXThenY)
{
    RdnMesh mesh(8, 8);
    auto path = mesh.route({1, 1}, {4, 3});
    ASSERT_EQ(path.size(), 6u); // 3 X hops + 2 Y hops + origin
    EXPECT_EQ(path.front(), (Coord{1, 1}));
    EXPECT_EQ(path[1], (Coord{2, 1}));
    EXPECT_EQ(path[3], (Coord{4, 1})); // X resolved first
    EXPECT_EQ(path.back(), (Coord{4, 3}));
}

TEST(RdnMesh, RouteToSelfIsJustTheNode)
{
    RdnMesh mesh(4, 4);
    auto path = mesh.route({2, 2}, {2, 2});
    EXPECT_EQ(path.size(), 1u);
    EXPECT_TRUE(mesh.routeLinks({2, 2}, {2, 2}).empty());
}

TEST(RdnMesh, RouteLengthIsManhattanDistance)
{
    RdnMesh mesh(16, 16);
    sim::Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        Coord a{static_cast<int>(rng.uniformInt(16)),
                static_cast<int>(rng.uniformInt(16))};
        Coord b{static_cast<int>(rng.uniformInt(16)),
                static_cast<int>(rng.uniformInt(16))};
        auto links = mesh.routeLinks(a, b);
        int manhattan = std::abs(a.x - b.x) + std::abs(a.y - b.y);
        EXPECT_EQ(static_cast<int>(links.size()), manhattan);
    }
}

TEST(RdnMesh, OffMeshPanics)
{
    RdnMesh mesh(4, 4);
    EXPECT_THROW(mesh.route({0, 0}, {4, 0}), sim::SimPanic);
    EXPECT_THROW(mesh.route({-1, 0}, {0, 0}), sim::SimPanic);
}

TEST(RdnMesh, MulticastTreeSharesCommonPrefix)
{
    RdnMesh mesh(8, 8);
    // Two destinations sharing the X leg from (0,0) to (4,0).
    auto tree = mesh.multicastTree({0, 0}, {{4, 2}, {4, 5}});
    auto to_a = mesh.routeLinks({0, 0}, {4, 2});
    auto to_b = mesh.routeLinks({0, 0}, {4, 5});
    // Tree is strictly smaller than two unicast routes.
    EXPECT_LT(tree.size(), to_a.size() + to_b.size());
    // Every unicast link is in the tree.
    for (const auto &l : to_a)
        EXPECT_TRUE(tree.count(l));
    for (const auto &l : to_b)
        EXPECT_TRUE(tree.count(l));
}

TEST(RdnMesh, FlowAccountingFindsHotLink)
{
    RdnMesh mesh(4, 1);
    // Two flows crossing the same middle link.
    mesh.addFlow({0, 0}, {3, 0}, 10e9);
    mesh.addFlow({1, 0}, {3, 0}, 10e9);
    EXPECT_DOUBLE_EQ(mesh.maxLinkLoad(), 20e9);
    EXPECT_DOUBLE_EQ(mesh.congestionFactor(40e9), 1.0);
    EXPECT_DOUBLE_EQ(mesh.congestionFactor(10e9), 2.0);
    mesh.clearFlows();
    EXPECT_DOUBLE_EQ(mesh.maxLinkLoad(), 0.0);
}

TEST(RdnMesh, MulticastFlowLoadsSharedLinksOnce)
{
    RdnMesh mesh(8, 8);
    mesh.addMulticastFlow({0, 0}, {{4, 2}, {4, 5}}, 10e9);
    // The shared X-leg link (1,0)->(2,0) carries the flow once.
    EXPECT_DOUBLE_EQ(mesh.maxLinkLoad(), 10e9);
}

TEST(ReorderBuffer, InOrderStreamsPassThrough)
{
    ReorderBuffer rob;
    rob.push(0);
    EXPECT_EQ(rob.drain(), 1u);
    rob.push(1);
    rob.push(2);
    EXPECT_EQ(rob.drain(), 2u);
    EXPECT_EQ(rob.nextExpected(), 3u);
}

TEST(ReorderBuffer, OutOfOrderHeldUntilGapFills)
{
    ReorderBuffer rob;
    rob.push(2);
    rob.push(1);
    EXPECT_EQ(rob.drain(), 0u);
    EXPECT_EQ(rob.pendingOutOfOrder(), 2u);
    rob.push(0);
    EXPECT_EQ(rob.drain(), 3u);
    EXPECT_EQ(rob.pendingOutOfOrder(), 0u);
    EXPECT_EQ(rob.maxOccupancy(), 3u);
}

TEST(ReorderBuffer, DuplicateOrStaleSeqPanics)
{
    ReorderBuffer rob;
    rob.push(0);
    rob.drain();
    EXPECT_THROW(rob.push(0), sim::SimPanic); // stale
    rob.push(5);
    EXPECT_THROW(rob.push(5), sim::SimPanic); // duplicate
}

TEST(ReorderBuffer, RandomPermutationAlwaysFullyDrains)
{
    sim::Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<std::uint64_t> seq(64);
        for (std::size_t i = 0; i < seq.size(); ++i)
            seq[i] = i;
        // Fisher-Yates shuffle.
        for (std::size_t i = seq.size(); i > 1; --i)
            std::swap(seq[i - 1], seq[rng.uniformInt(i)]);

        ReorderBuffer rob;
        std::size_t released = 0;
        for (std::uint64_t s : seq) {
            rob.push(s);
            released += rob.drain();
        }
        EXPECT_EQ(released, seq.size());
        EXPECT_EQ(rob.pendingOutOfOrder(), 0u);
    }
}

TEST(CreditLink, DeliversInOrderWithSerialization)
{
    sim::EventQueue eq;
    CreditLink link(eq, "link", 4, sim::fromNs(10), sim::fromNs(5));
    std::vector<sim::Tick> delivered;
    link.send(1, [&]() { delivered.push_back(eq.now()); });
    link.send(1, [&]() { delivered.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], sim::fromNs(10));
    EXPECT_EQ(delivered[1], sim::fromNs(20));
}

TEST(CreditLink, CreditExhaustionStallsSender)
{
    sim::EventQueue eq;
    // One credit: each flit must wait for the previous credit return.
    CreditLink link(eq, "link", 1, sim::fromNs(10), sim::fromNs(90));
    std::vector<sim::Tick> delivered;
    for (int i = 0; i < 3; ++i)
        link.send(1, [&]() { delivered.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(delivered.size(), 3u);
    EXPECT_EQ(delivered[0], sim::fromNs(10));
    // Next flit waits for credit at t=10+90, delivers at 110.
    EXPECT_EQ(delivered[1], sim::fromNs(110));
    EXPECT_EQ(delivered[2], sim::fromNs(210));
    EXPECT_GT(link.stats().get("credit_stalls"), 0.0);
}

TEST(CreditLink, MultiFlitMessageCompletesOnLastFlit)
{
    sim::EventQueue eq;
    CreditLink link(eq, "link", 8, sim::fromNs(10), sim::fromNs(5));
    sim::Tick done = -1;
    link.send(4, [&]() { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, sim::fromNs(40));
}

TEST(CreditLink, ValidatesConfig)
{
    sim::EventQueue eq;
    EXPECT_THROW(CreditLink(eq, "bad", 0, 1, 1), sim::FatalError);
    EXPECT_THROW(CreditLink(eq, "bad", 1, 0, 1), sim::FatalError);
    CreditLink link(eq, "ok", 1, 1, 1);
    EXPECT_THROW(link.send(0, nullptr), sim::SimPanic);
}
