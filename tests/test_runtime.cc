/**
 * @file
 * Tests for the runtime: machine model, executor orchestration
 * semantics, the runner harness, and speculative decoding.
 */

#include <gtest/gtest.h>

#include "models/transformer_builder.h"
#include "runtime/executor.h"
#include "runtime/runner.h"
#include "runtime/spec_decode.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::runtime;

namespace {

graph::DataflowGraph
smallDecode()
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 512;
    spec.tensorParallel = 8;
    return models::buildTransformer(spec);
}

} // namespace

TEST(Machine, NodeAggregateDdrToHbmExceedsOneTerabytePerSecond)
{
    // Paper: "Models are loaded from DDR to HBM at over 1 TB/s in a
    // single SN40L Node."
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);
    sim::EventQueue eq;
    RduNode node(eq, cfg);

    double bytes = 13.48e9; // one Llama2-7B expert
    sim::Tick est = node.estimateDdrToHbm(bytes);
    double rate = bytes / sim::toSeconds(est);
    EXPECT_GT(rate, 1e12);

    // The DES copy agrees with the estimate.
    sim::Tick done = -1;
    node.copyDdrToHbm(bytes, [&]() { done = eq.now(); });
    eq.run();
    EXPECT_NEAR(static_cast<double>(done), static_cast<double>(est),
                static_cast<double>(est) * 0.01 + 2e6);
}

TEST(Machine, HostPathIsMuchSlowerThanDdrPath)
{
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);
    sim::EventQueue eq;
    RduNode node(eq, cfg);

    double bytes = 13.48e9;
    sim::Tick ddr_done = -1, host_done = -1;
    node.copyDdrToHbm(bytes, [&]() { ddr_done = eq.now(); });
    node.copyHostToHbm(bytes, [&]() { host_done = eq.now(); });
    eq.run();
    EXPECT_GT(host_done, 10 * ddr_done);
}

TEST(Executor, TimeIsLaunchPlusExec)
{
    graph::DataflowGraph g = smallDecode();
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);

    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    options.fusion.mode = compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, cfg.chip, options);

    sim::EventQueue eq;
    RduNode node(eq, cfg);
    Executor executor(node);
    ExecutionResult result =
        executor.run(prog, arch::Orchestration::Software);

    EXPECT_EQ(result.totalTicks, result.launchTicks + result.execTicks);
    EXPECT_EQ(result.launches, prog.totalLaunches);
    // SW orchestration serializes host sync + Program Load + Argument
    // Load on every launch.
    sim::Tick per_launch = cfg.chip.swLaunchOverhead +
                           cfg.chip.programLoadOverhead +
                           cfg.chip.argumentLoadOverhead;
    EXPECT_EQ(result.launchTicks, prog.totalLaunches * per_launch);
}

TEST(Executor, HardwareOrchestrationOnlyCutsLaunchTime)
{
    graph::DataflowGraph g = smallDecode();
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);

    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    compiler::Program prog = compiler::compile(g, cfg.chip, options);

    sim::EventQueue eq1, eq2;
    RduNode node_sw(eq1, cfg), node_hw(eq2, cfg);
    ExecutionResult sw = Executor(node_sw).run(
        prog, arch::Orchestration::Software);
    ExecutionResult hw = Executor(node_hw).run(
        prog, arch::Orchestration::Hardware);

    EXPECT_EQ(sw.execTicks, hw.execTicks);
    EXPECT_GT(sw.launchTicks, hw.launchTicks);
    EXPECT_LT(hw.totalTicks, sw.totalTicks);
}

TEST(Executor, ChannelStatsAccumulateTraffic)
{
    graph::DataflowGraph g = smallDecode();
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);

    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    compiler::Program prog = compiler::compile(g, cfg.chip, options);

    sim::EventQueue eq;
    RduNode node(eq, cfg);
    Executor(node).run(prog, arch::Orchestration::Hardware);

    // Each socket streams its weight shard (roughly weights/8 plus
    // activations and KV).
    double socket_bytes = node.socket(0).hbm().stats().get("bytes");
    EXPECT_GT(socket_bytes, g.weightBytes() / 8 * 0.9);
    EXPECT_LT(socket_bytes, g.weightBytes() / 8 * 1.6);
}

TEST(Runner, ConfigOrderingHoldsForDecode)
{
    graph::DataflowGraph g = smallDecode();
    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);

    double unfused =
        runWorkload(g, cfg, 8, RunConfig::Unfused).seconds();
    double so = runWorkload(g, cfg, 8, RunConfig::FusedSO).seconds();
    double ho = runWorkload(g, cfg, 8, RunConfig::FusedHO).seconds();

    EXPECT_GT(unfused, so);
    EXPECT_GT(so, ho);
}

TEST(SpecDecode, ExpectedTokensFormula)
{
    SpecDecodeConfig cfg;
    cfg.gamma = 5;
    cfg.acceptRate = 0.0;
    EXPECT_DOUBLE_EQ(cfg.expectedTokensPerStep(), 1.0);
    cfg.acceptRate = 1.0;
    EXPECT_DOUBLE_EQ(cfg.expectedTokensPerStep(), 6.0);
    cfg.acceptRate = 0.5;
    // (1 - 0.5^6) / 0.5 = 1.96875
    EXPECT_NEAR(cfg.expectedTokensPerStep(), 1.96875, 1e-9);
}

TEST(SpecDecode, ThroughputBeatsAutoregressiveWhenDraftIsCheap)
{
    SpecDecodeConfig cfg;
    double target = 10e-3;
    double plain = specDecodeTokensPerSecond(cfg, target, 0.0);
    EXPECT_DOUBLE_EQ(plain, 100.0);
    double spec = specDecodeTokensPerSecond(cfg, target, 0.5e-3);
    EXPECT_GT(spec, 2.0 * plain);

    // An expensive draft can make speculation pointless.
    double bad = specDecodeTokensPerSecond(cfg, target, 20e-3);
    EXPECT_LT(bad, plain);
}

TEST(SpecDecode, RejectsBadTargetTime)
{
    SpecDecodeConfig cfg;
    EXPECT_THROW(specDecodeTokensPerSecond(cfg, 0.0, 1e-3),
                 sim::FatalError);
}

TEST(SpecDecode, RejectsNegativeGamma)
{
    // Regression: a negative gamma used to shrink the modeled step
    // below the target verification time and inflate tokens/s; it is
    // now rejected everywhere the config enters the model.
    SpecDecodeConfig cfg;
    cfg.gamma = -1;
    EXPECT_THROW(specDecodeTokensPerSecond(cfg, 10e-3, 1e-3),
                 sim::FatalError);
    sim::Rng rng(7);
    EXPECT_THROW(sampleTokensPerStep(cfg, rng), sim::FatalError);
}

TEST(SpecDecode, GammaZeroIsAutoregressiveEvenWithCostlyDraft)
{
    // Degenerate corner: no draft tokens proposed, so the draft cost
    // term vanishes even when draft decode time is positive.
    SpecDecodeConfig cfg;
    cfg.gamma = 0;
    EXPECT_DOUBLE_EQ(cfg.expectedTokensPerStep(), 1.0);
    double target = 10e-3;
    EXPECT_DOUBLE_EQ(specDecodeTokensPerSecond(cfg, target, 20e-3),
                     1.0 / target);
}

TEST(SpecDecode, NonPositiveDraftTimeMeansNoDraftModel)
{
    // Degenerate corner: draft_token_seconds <= 0 is "no draft
    // model" — the step is the bare target verification.
    SpecDecodeConfig cfg;
    cfg.gamma = 5;
    double target = 10e-3;
    EXPECT_DOUBLE_EQ(specDecodeTokensPerSecond(cfg, target, 0.0),
                     1.0 / target);
    EXPECT_DOUBLE_EQ(specDecodeTokensPerSecond(cfg, target, -1.0),
                     1.0 / target);
}

TEST(SpecDecode, SamplerBoundsAndExtremes)
{
    SpecDecodeConfig cfg;
    cfg.gamma = 4;
    EXPECT_THROW(
        [] {
            SpecDecodeConfig bad;
            bad.acceptRate = 1.5;
            sim::Rng r(1);
            sampleTokensPerStep(bad, r);
        }(),
        sim::FatalError);

    cfg.acceptRate = 0.0;
    sim::Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampleTokensPerStep(cfg, rng), 1);

    cfg.acceptRate = 1.0;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampleTokensPerStep(cfg, rng), cfg.gamma + 1);

    cfg.acceptRate = 0.6;
    for (int i = 0; i < 1000; ++i) {
        int t = sampleTokensPerStep(cfg, rng);
        EXPECT_GE(t, 1);
        EXPECT_LE(t, cfg.gamma + 1);
    }
}

TEST(SpecDecode, SamplerIsDeterministicAndCrnMonotone)
{
    SpecDecodeConfig cfg;
    cfg.gamma = 4;
    cfg.acceptRate = 0.5;

    sim::Rng a(42), b(42);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(sampleTokensPerStep(cfg, a),
                  sampleTokensPerStep(cfg, b));

    // Common-random-numbers coupling: the sampler burns exactly gamma
    // uniforms per step, so on identical rng streams a higher
    // acceptance rate can never emit fewer tokens per step.
    SpecDecodeConfig hi = cfg;
    hi.acceptRate = 0.9;
    sim::Rng lo_rng(7), hi_rng(7);
    for (int i = 0; i < 500; ++i) {
        int lo_t = sampleTokensPerStep(cfg, lo_rng);
        int hi_t = sampleTokensPerStep(hi, hi_rng);
        EXPECT_GE(hi_t, lo_t);
    }
}

TEST(SpecDecode, StepsForTokensCorners)
{
    SpecDecodeConfig cfg;
    cfg.gamma = 0;
    sim::Rng rng(3);
    // gamma == 0 is exactly autoregressive: one token per step.
    EXPECT_EQ(sampleStepsForTokens(cfg, 20, rng), 20);
    EXPECT_EQ(sampleStepsForTokens(cfg, 0, rng), 0);
    EXPECT_EQ(sampleStepsForTokens(cfg, -5, rng), 0);

    // accept == 1: every step retires gamma + 1 tokens.
    cfg.gamma = 4;
    cfg.acceptRate = 1.0;
    EXPECT_EQ(sampleStepsForTokens(cfg, 20, rng), 4);
    EXPECT_EQ(sampleStepsForTokens(cfg, 21, rng), 5);

    // accept == 0: every step retires exactly the bonus token.
    cfg.acceptRate = 0.0;
    EXPECT_EQ(sampleStepsForTokens(cfg, 20, rng), 20);
}
