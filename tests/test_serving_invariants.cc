/**
 * @file
 * Property/invariant tests: randomized serving and cluster
 * configurations (seeded, 200 trials total) asserting the
 * conservation laws the simulators must uphold regardless of
 * workload, scheduler, placement, or SLO knobs:
 *
 *  - arrivals == completions + shed + lost once the event stream
 *    drains (in-flight is zero at drain by the drivers' own asserts;
 *    lost is only ever non-zero under injected crash/flaky faults,
 *    and retries/hedges never double-count a request) — including
 *    trials that route all cluster traffic over the interconnect
 *    model, with and without a link-degrade fault, and trials with
 *    speculative decoding (incl. the gamma == 0 and accept-rate 0/1
 *    corners) and the PEFT adapter zoo (with and without churn)
 *    enabled;
 *  - no request completes before it arrives (latencies non-negative,
 *    checked per sample);
 *  - per-node dispatched/completed/miss/shed counts sum to the
 *    cluster-wide totals;
 *  - merged sim::Distribution count equals the sum of its parts.
 *
 * Runs under ASan and TSan in CI via the `invariant` ctest label.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coe/cluster.h"
#include "coe/serving.h"
#include "coe/workload.h"
#include "sim/rng.h"
#include "sim/stats.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

constexpr int kSingleNodeTrials = 110;
constexpr int kClusterTrials = 60;
constexpr int kMergeTrials = 30;

/**
 * Draw a randomized-but-valid EventDriven serving config. All shapes
 * keep the default prompt/token lengths at the *pricing* level, so
 * the process-wide cost memo serves every trial after the first few.
 */
ServingConfig
randomServingConfig(sim::Rng &rng, int trial)
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 20 + static_cast<int>(rng.uniformInt(80));
    cfg.batch = 1 + static_cast<int>(rng.uniformInt(8));
    cfg.streamRequests = 40 + static_cast<int>(rng.uniformInt(80));
    cfg.arrivalRatePerSec = 4.0 + static_cast<double>(rng.uniformInt(96));
    cfg.seed = static_cast<std::uint64_t>(trial) * 7919u + 13u;
    cfg.scheduler = rng.uniformInt(2) == 0
        ? SchedulerPolicy::Fifo
        : SchedulerPolicy::ExpertAffinity;
    switch (rng.uniformInt(3)) {
      case 0: cfg.routing = RoutingDistribution::Uniform; break;
      case 1:
        cfg.routing = RoutingDistribution::Zipf;
        cfg.zipfS = 0.8 + 0.1 * static_cast<double>(rng.uniformInt(6));
        break;
      default: cfg.routing = RoutingDistribution::RoundRobin; break;
    }
    if (rng.uniformInt(4) == 0) {
        cfg.predictivePrefetch = true;
        cfg.prefetchDepth = 1 + static_cast<int>(rng.uniformInt(4));
    }

    // Workload scenario roulette.
    switch (rng.uniformInt(5)) {
      case 0: // legacy open loop
        break;
      case 1: // closed loop
        cfg.arrival = ArrivalProcess::ClosedLoop;
        cfg.clients = 1 + static_cast<int>(rng.uniformInt(24));
        cfg.thinkSeconds =
            0.02 * static_cast<double>(rng.uniformInt(10));
        break;
      case 2: // tenant mix
        cfg.workload.tenants = 2 + static_cast<int>(rng.uniformInt(4));
        break;
      case 3: // conversational sessions
        cfg.workload.tenants = 1 + static_cast<int>(rng.uniformInt(3));
        cfg.workload.sessionFollowProb =
            0.2 + 0.1 * static_cast<double>(rng.uniformInt(6));
        cfg.workload.sessionThinkSeconds =
            0.05 * static_cast<double>(rng.uniformInt(8));
        break;
      default: // bursty
        cfg.workload.shape.burstFactor =
            2.0 + static_cast<double>(rng.uniformInt(4));
        cfg.workload.shape.burstEverySeconds = 4.0;
        cfg.workload.shape.burstSeconds = 1.0;
        break;
    }
    // SLO admission on a third of trials (any workload kind).
    if (rng.uniformInt(3) == 0)
        cfg.workload.sloSeconds =
            0.5 + 0.25 * static_cast<double>(rng.uniformInt(12));

    // Spec-decode / zoo roulette: draft/verify decode shapes and tiny
    // LoRA adapters must uphold the same conservation laws as plain
    // serving. All draws are unconditional (RNG-stream-stability
    // discipline); the sweeps deliberately include the degenerate
    // corners gamma == 0 and acceptRate in {0, 1}.
    std::uint64_t specDraw = rng.uniformInt(3);
    std::uint64_t gammaDraw = rng.uniformInt(6);
    std::uint64_t acceptDraw = rng.uniformInt(11);
    std::uint64_t zooDraw = rng.uniformInt(3);
    std::uint64_t churnDraw = rng.uniformInt(3);
    if (specDraw == 0) {
        cfg.specDecode.enabled = true;
        cfg.specDecode.gamma = static_cast<int>(gammaDraw); // 0..5
        cfg.specDecode.acceptRate =
            0.1 * static_cast<double>(acceptDraw); // 0.0..1.0
        cfg.specDecode.draftRatio = 0.05;
    }
    if (zooDraw == 0) {
        cfg.zoo.enabled = true;
        cfg.zoo.rank = 16;
        if (churnDraw == 0)
            cfg.zoo.churnEverySeconds = 2.0;
    }
    return cfg;
}

} // namespace

TEST(ServingInvariants, RandomizedSingleNodeConservation)
{
    sim::Rng rng(0xC0FFEE);
    for (int trial = 0; trial < kSingleNodeTrials; ++trial) {
        ServingConfig cfg = randomServingConfig(rng, trial);
        SCOPED_TRACE("trial " + std::to_string(trial) + " seed " +
                     std::to_string(cfg.seed));

        ServingSimulator sim(cfg);
        ServingResult r = sim.run();
        ASSERT_FALSE(r.oom);
        const StreamMetrics &m = r.stream;

        // Conservation: every emitted request either completed or was
        // shed at admission; nothing is in flight after drain (the
        // driver's own simAsserts would have thrown otherwise).
        EXPECT_EQ(m.completed + m.shed,
                  static_cast<std::int64_t>(cfg.streamRequests));
        if (cfg.workload.sloSeconds == 0.0) {
            EXPECT_EQ(m.shed, 0);
        }
        // The chaos layer lives in the cluster hub; a single node has
        // no fault surface, so its chaos counters must stay zero.
        EXPECT_EQ(m.lost, 0);
        EXPECT_EQ(m.retried, 0);
        EXPECT_EQ(m.hedged, 0);

        // Causality: no request completes before it arrives.
        EXPECT_EQ(sim.latencySamples().count(),
                  static_cast<std::uint64_t>(m.completed));
        for (double sample : sim.latencySamples().samples())
            ASSERT_GE(sample, 0.0);

        // Order statistics are ordered; occupancy is bounded.
        EXPECT_LE(m.p50LatencySeconds, m.p95LatencySeconds);
        EXPECT_LE(m.p95LatencySeconds, m.p99LatencySeconds);
        EXPECT_LE(m.p99LatencySeconds, m.maxLatencySeconds);
        EXPECT_LE(m.meanBatchOccupancy,
                  static_cast<double>(cfg.batch) + 1e-12);

        // Hit/miss accounting covers every completion.
        EXPECT_DOUBLE_EQ(sim.stats().get("hits") +
                             sim.stats().get("misses"),
                         static_cast<double>(m.completed));
    }
}

TEST(ClusterInvariants, RandomizedClusterConservation)
{
    sim::Rng rng(0xBEEFCAFE);
    for (int trial = 0; trial < kClusterTrials; ++trial) {
        ClusterConfig cfg;
        cfg.nodes = 2 + static_cast<int>(rng.uniformInt(3));
        switch (rng.uniformInt(3)) {
          case 0: cfg.placement = PlacementPolicy::FullReplication; break;
          case 1:
            cfg.placement = PlacementPolicy::ReplicateHotPartitionCold;
            break;
          default:
            cfg.placement = PlacementPolicy::BalancedPartition;
            break;
        }
        switch (rng.uniformInt(3)) {
          case 0: cfg.dispatch = DispatchPolicy::RoundRobin; break;
          case 1: cfg.dispatch = DispatchPolicy::LeastOutstanding; break;
          default: cfg.dispatch = DispatchPolicy::ExpertAffinity; break;
        }
        cfg.node = randomServingConfig(rng, 1000 + trial);
        cfg.node.arrivalRatePerSec *= cfg.nodes;
        if (cfg.node.arrival != ArrivalProcess::ClosedLoop &&
            rng.uniformInt(3) == 0) {
            cfg.drainAtSeconds = 1.0;
            cfg.drainNode = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(cfg.nodes)));
            if (rng.uniformInt(2) == 0)
                cfg.rejoinAtSeconds = 3.0;
        }
        // Scripted rate overrides on open-loop trials: the generator
        // must keep emitting the full budget through the change.
        if (cfg.node.arrival != ArrivalProcess::ClosedLoop &&
            rng.uniformInt(4) == 0) {
            ScheduledAction a;
            a.kind = ActionKind::RateOverride;
            a.atSeconds = 0.5;
            a.rateFactor =
                0.5 + 0.25 * static_cast<double>(rng.uniformInt(5));
            cfg.actions.push_back(a);
        }
        // Controller roulette: an autoscaler dueling with the drain
        // script must never lose a request either.
        if (rng.uniformInt(4) == 0) {
            cfg.controller.policy = rng.uniformInt(2) == 0
                ? ControllerPolicy::ReactiveThreshold
                : ControllerPolicy::TargetUtilization;
            cfg.controller.minNodes = 1;
            cfg.controller.tickSeconds = 0.25;
            if (rng.uniformInt(2) == 0)
                cfg.controller.hotExpertTrack = 3;
        }
        // Threads roulette: conservation must hold under the sharded
        // parallel run path too. Drawn unconditionally so the RNG
        // stream (and thus every trial config) stays identical across
        // safe and unsafe trials; applied only where the parallel
        // path is defined (no zero-lookahead feedback loops).
        int rouletteThreads = 1 + static_cast<int>(rng.uniformInt(4));
        bool parallelSafe =
            cfg.node.arrival != ArrivalProcess::ClosedLoop &&
            cfg.node.workload.sessionFollowProb == 0.0 &&
            cfg.dispatch != DispatchPolicy::LeastOutstanding;
        if (parallelSafe)
            cfg.threads = rouletteThreads; // ctor clamps to nodes
        // Fabric roulette: a third of trials route dispatch, drain,
        // and migration traffic over the interconnect model, on a
        // random topology with links thin enough to queue. The
        // network delays requests but never owns or drops one, so
        // every conservation law below must hold unchanged. Drawn
        // unconditionally (same RNG-stream-stability discipline).
        std::uint64_t fabricDraw = rng.uniformInt(3);
        std::uint64_t topoDraw = rng.uniformInt(3);
        if (fabricDraw == 0) {
            cfg.fabric.enabled = true;
            cfg.fabric.topology = topoDraw == 0 ? sim::Topology::Star
                : topoDraw == 1               ? sim::Topology::Mesh2D
                                              : sim::Topology::FatTree;
            cfg.fabric.linkGbps = 2.0;
        }
        // Fault roulette: the chaos layer must uphold the extended
        // conservation law no matter which fault fires or which
        // degraded-mode policy is armed. All draws are unconditional
        // (same RNG-stream-stability discipline as above); displacing
        // kinds (crash, flaky) remap to a straggler on trials with
        // closed-loop arrivals or generated sessions, which the
        // simulator rejects by construction (a lost request would
        // wedge the client pool / starve its follow-up); link-degrade
        // needs the fabric and remaps to a DMA stall without one.
        std::uint64_t faultOn = rng.uniformInt(3);
        std::uint64_t kindDraw = rng.uniformInt(5);
        int faultNode = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(cfg.nodes)));
        double faultAt =
            0.4 + 0.2 * static_cast<double>(rng.uniformInt(5));
        double faultDur = // 0 = fault is permanent, never heals
            0.5 * static_cast<double>(rng.uniformInt(4));
        std::uint64_t policyDraw = rng.uniformInt(4);
        bool chaos = faultOn == 0;
        if (chaos) {
            bool displacingOk =
                cfg.node.arrival != ArrivalProcess::ClosedLoop &&
                cfg.node.workload.sessionFollowProb == 0.0;
            FaultEvent e;
            e.atSeconds = faultAt;
            e.node = faultNode;
            e.durationSeconds = faultDur;
            switch (kindDraw) {
              case 0: e.kind = FaultKind::NodeCrash; break;
              case 1: e.kind = FaultKind::DmaStall; e.factor = 3.0; break;
              case 2: e.kind = FaultKind::Straggler; e.factor = 2.5; break;
              case 3: e.kind = FaultKind::FlakyNode; e.factor = 0.5; break;
              default:
                e.kind = FaultKind::LinkDegrade;
                e.factor = 20.0;
                break;
            }
            if (!displacingOk && (e.kind == FaultKind::NodeCrash ||
                                  e.kind == FaultKind::FlakyNode)) {
                e.kind = FaultKind::Straggler;
                e.factor = 2.5;
            }
            if (e.kind == FaultKind::LinkDegrade &&
                !cfg.fabric.enabled) {
                e.kind = FaultKind::DmaStall;
                e.factor = 3.0;
            }
            cfg.faults = std::make_shared<const std::vector<FaultEvent>>(
                std::vector<FaultEvent>{e});
            switch (policyDraw) {
              case 0: // no recovery: displaced work is counted lost
                break;
              case 1: // bounded retry, unbounded budget
                cfg.faultPolicy.retryMax = 2;
                cfg.faultPolicy.retryBackoffSeconds = 0.02;
                break;
              case 2: // tight cluster-wide retry budget
                cfg.faultPolicy.retryMax = 1;
                cfg.faultPolicy.retryBackoffSeconds = 0.02;
                cfg.faultPolicy.retryBudget = 5;
                break;
              default: // everything on: retry + hedge + brown-out
                cfg.faultPolicy.retryMax = 3;
                cfg.faultPolicy.retryBackoffSeconds = 0.01;
                cfg.faultPolicy.hedge = true;
                cfg.faultPolicy.brownoutDepth = 2.0;
                cfg.faultPolicy.brownoutPriorityMax = 1;
                cfg.faultPolicy.policyTickSeconds = 0.1;
                break;
            }
        }
        SCOPED_TRACE("trial " + std::to_string(trial) + " seed " +
                     std::to_string(cfg.node.seed) + " nodes " +
                     std::to_string(cfg.nodes) + " threads " +
                     std::to_string(cfg.threads) + " fabric " +
                     (cfg.fabric.enabled
                          ? sim::topologyName(cfg.fabric.topology)
                          : "off") +
                     " fault " +
                     (chaos ? std::string(faultKindName(
                                  (*cfg.faults)[0].kind)) +
                          "@n" + std::to_string(faultNode) +
                          " policy " + std::to_string(policyDraw)
                            : std::string("none")));

        ClusterSimulator sim(cfg);
        ClusterResult r = sim.run();
        ASSERT_FALSE(r.oom);
        const StreamMetrics &m = r.stream;

        // Extended conservation: every emitted request completes, is
        // shed (admission SLO or brown-out), or is counted lost by the
        // retry policy — retries and hedge duplicates never
        // double-count.
        EXPECT_EQ(m.completed + m.shed + m.lost,
                  static_cast<std::int64_t>(cfg.node.streamRequests));
        if (!chaos) {
            EXPECT_EQ(m.lost, 0);
            EXPECT_EQ(m.retried, 0);
            EXPECT_EQ(m.hedged, 0);
        }
        EXPECT_GE(m.hedged, m.hedgeWon);
        EXPECT_EQ(r.faultsInjected, chaos ? 1 : 0);

        // Every completion crossed the fabric at least once (hub-side
        // brown-out sheds and flaky dispatch failures never ride), and
        // nothing rides the wire without the fabric.
        if (cfg.fabric.enabled)
            EXPECT_GE(r.networkMessages, m.completed);
        else
            EXPECT_EQ(r.networkMessages, 0);

        // Per-node counters sum to the cluster-wide totals.
        std::int64_t completed = 0, misses = 0, shed = 0;
        std::int64_t dispatched = 0, redispatched = 0;
        for (const ClusterNodeMetrics &nm : r.nodes) {
            completed += nm.completed;
            misses += nm.misses;
            shed += nm.shed;
            dispatched += nm.dispatched;
            redispatched += nm.redispatched;
        }
        // Brown-out sheds happen hub-side before a node is chosen, so
        // they appear in the cluster total but in no per-node counter;
        // flaky dispatch failures likewise never reach an engine.
        std::int64_t hubShed = static_cast<std::int64_t>(
            sim.stats().get("brownout_shed"));
        std::int64_t flakyFails = static_cast<std::int64_t>(
            sim.stats().get("flaky_failures"));
        // Hedge wins are completions credited at the hub — the engines
        // never count a duplicate — and each win credits exactly once.
        EXPECT_EQ(completed + m.hedgeWon, m.completed);
        EXPECT_EQ(shed + hubShed, m.shed);
        EXPECT_DOUBLE_EQ(static_cast<double>(misses),
                         sim.stats().get("misses"));
        EXPECT_EQ(redispatched, r.redispatched);
        // Every emission is dispatched once, plus once more per
        // redispatch hop off a drained node, per scheduled retry, and
        // per hedge duplicate — minus the requests the hub never
        // handed to an engine at all (brown-out sheds and flaky
        // dispatch failures, which include retries that failed again).
        EXPECT_EQ(dispatched + hubShed + flakyFails,
                  static_cast<std::int64_t>(cfg.node.streamRequests) +
                      r.redispatched + m.retried + m.hedged);

        // The cluster-wide latency distribution is the exact merge of
        // per-request samples: one sample per completion, all
        // non-negative.
        EXPECT_EQ(sim.latencySamples().count(),
                  static_cast<std::uint64_t>(m.completed));
        for (double sample : sim.latencySamples().samples())
            ASSERT_GE(sample, 0.0);

        // Provisioning accounting: node-hours are the node-seconds
        // integral, and an active controller ticked at least once.
        EXPECT_GT(r.nodeSecondsLive, 0.0);
        EXPECT_NEAR(r.nodeHours, r.nodeSecondsLive / 3600.0,
                    1e-12 * (1.0 + r.nodeHours));
        if (cfg.controller.policy != ControllerPolicy::Static)
            EXPECT_GT(r.controllerTicks, 0);
        else
            EXPECT_EQ(r.controllerTicks, 0);
    }
}

TEST(DistributionInvariants, MergedCountEqualsSumOfPartsRandomized)
{
    sim::Rng rng(0xD157);
    for (int trial = 0; trial < kMergeTrials; ++trial) {
        std::size_t cap = 64u << rng.uniformInt(4); // 64..512
        int parts = 2 + static_cast<int>(rng.uniformInt(5));
        sim::Distribution merged("merged", cap);
        std::uint64_t total = 0;
        double sum = 0.0;
        for (int p = 0; p < parts; ++p) {
            sim::Distribution d("part", cap);
            int n = 1 + static_cast<int>(rng.uniformInt(3 * cap));
            for (int i = 0; i < n; ++i) {
                double v = rng.exponential(0.3);
                d.record(v);
                sum += v;
            }
            total += static_cast<std::uint64_t>(n);
            merged.merge(d);
        }
        EXPECT_EQ(merged.count(), total) << "trial " << trial;
        // Per-part sums associate differently than the sequential sum.
        EXPECT_NEAR(merged.sum(), sum, 1e-9 * sum);
        EXPECT_LE(merged.samples().size(), cap);
        EXPECT_GE(merged.quantile(1.0), merged.quantile(0.5));
    }
}
