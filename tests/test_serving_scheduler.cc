/**
 * @file
 * Tests for the event-driven CoE request-stream scheduler: scheduler
 * policies against the live LRU cache, latency-tail and saturation
 * behaviour, the closed-loop arrival process, the Distribution sample
 * recorder, and bit-exactness of the legacy analytic mode against
 * values captured from the pre-refactor simulator.
 */

#include <gtest/gtest.h>

#include "coe/serving.h"
#include "sim/log.h"
#include "sim/stats.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingConfig
streamConfig()
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 150;
    cfg.batch = 8;
    cfg.streamRequests = 400;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.arrivalRatePerSec = 60.0; // well past saturation: queue builds
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(Distribution, QuantilesAndMoments)
{
    sim::Distribution d("lat");
    EXPECT_EQ(d.quantile(0.5), 0.0);
    for (int i = 1; i <= 100; ++i)
        d.record(static_cast<double>(i));
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
    EXPECT_NEAR(d.quantile(0.5), 50.5, 1e-12);
    EXPECT_NEAR(d.quantile(0.99), 99.01, 1e-9);
    // Recording after a quantile query invalidates the sorted cache.
    d.record(1000.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 1000.0);
    d.clear();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
}

TEST(SchedulerPolicy, NamesRoundTrip)
{
    EXPECT_EQ(schedulerPolicyFromName("fifo"), SchedulerPolicy::Fifo);
    EXPECT_EQ(schedulerPolicyFromName("affinity"),
              SchedulerPolicy::ExpertAffinity);
    EXPECT_EQ(schedulerPolicyFromName("expert-affinity"),
              SchedulerPolicy::ExpertAffinity);
    EXPECT_THROW(schedulerPolicyFromName("lifo"), sim::FatalError);
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Fifo), "fifo");
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::ExpertAffinity),
                 "affinity");
}

TEST(StreamScheduler, DeterministicPerSeed)
{
    ServingConfig cfg = streamConfig();
    ServingResult a = ServingSimulator(cfg).run();
    ServingResult b = ServingSimulator(cfg).run();
    EXPECT_DOUBLE_EQ(a.stream.p99LatencySeconds, b.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.throughputRequestsPerSec,
                     b.stream.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
}

TEST(StreamScheduler, AffinityBeatsFifoMissesOnSkewedRouting)
{
    ServingConfig cfg = streamConfig();

    cfg.scheduler = SchedulerPolicy::Fifo;
    ServingSimulator fifo(cfg);
    ServingResult fifo_r = fifo.run();

    cfg.scheduler = SchedulerPolicy::ExpertAffinity;
    ServingSimulator affinity(cfg);
    ServingResult affinity_r = affinity.run();

    EXPECT_LT(affinity.stats().get("misses"), fifo.stats().get("misses"));
    EXPECT_LT(affinity_r.missRate, fifo_r.missRate);
    // Every request completes under both policies.
    EXPECT_EQ(fifo_r.stream.completed, cfg.streamRequests);
    EXPECT_EQ(affinity_r.stream.completed, cfg.streamRequests);
}

TEST(StreamScheduler, TailDominatesMedian)
{
    for (SchedulerPolicy policy :
         {SchedulerPolicy::Fifo, SchedulerPolicy::ExpertAffinity}) {
        ServingConfig cfg = streamConfig();
        cfg.scheduler = policy;
        ServingSimulator sim(cfg);
        ServingResult r = sim.run();
        EXPECT_GE(r.stream.p99LatencySeconds, r.stream.p95LatencySeconds);
        EXPECT_GE(r.stream.p95LatencySeconds, r.stream.p50LatencySeconds);
        EXPECT_GE(r.stream.maxLatencySeconds, r.stream.p99LatencySeconds);
        EXPECT_EQ(sim.latencySamples().count(),
                  static_cast<std::size_t>(cfg.streamRequests));
    }
}

TEST(StreamScheduler, ThroughputSaturatesPastServiceRate)
{
    auto throughput = [](double rate) {
        ServingConfig cfg = streamConfig();
        cfg.routing = RoutingDistribution::Uniform;
        cfg.arrivalRatePerSec = rate;
        return ServingSimulator(cfg).run().stream.throughputRequestsPerSec;
    };

    double low = throughput(2.0);
    double mid = throughput(64.0);
    double high = throughput(256.0);

    // Under light load throughput tracks the arrival rate...
    EXPECT_NEAR(low, 2.0, 0.5);
    // ...past saturation it clamps at the service rate: quadrupling
    // the offered load moves sustained throughput by under 5%.
    EXPECT_GT(mid, 4.0);
    EXPECT_NEAR(high / mid, 1.0, 0.05);

    // Queueing delay explodes across the saturation knee.
    ServingConfig cfg = streamConfig();
    cfg.routing = RoutingDistribution::Uniform;
    cfg.arrivalRatePerSec = 2.0;
    double p99_low = ServingSimulator(cfg).run().stream.p99LatencySeconds;
    cfg.arrivalRatePerSec = 256.0;
    double p99_high = ServingSimulator(cfg).run().stream.p99LatencySeconds;
    EXPECT_GT(p99_high, 5.0 * p99_low);
}

TEST(StreamScheduler, ClosedLoopKeepsClientsInFlight)
{
    ServingConfig cfg = streamConfig();
    cfg.arrival = ArrivalProcess::ClosedLoop;
    cfg.clients = 8;
    cfg.streamRequests = 96;
    cfg.thinkSeconds = 0.05;

    ServingResult r = ServingSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed, cfg.streamRequests);
    // In-flight work can never exceed the client pool.
    EXPECT_LE(r.stream.maxQueueDepth, static_cast<double>(cfg.clients));
    EXPECT_GT(r.stream.throughputRequestsPerSec, 0.0);
}

TEST(StreamScheduler, AffinityStarvationGuardServesColdExperts)
{
    // Round-robin over many experts with a tiny aging limit: every
    // expert, however cold, must still get served and the run drains.
    ServingConfig cfg = streamConfig();
    cfg.routing = RoutingDistribution::RoundRobin;
    cfg.scheduler = SchedulerPolicy::ExpertAffinity;
    cfg.affinityMaxSkips = 2;
    cfg.streamRequests = 200;
    ServingResult r = ServingSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed, cfg.streamRequests);
}

TEST(StreamScheduler, StreamMetricsAreConsistent)
{
    ServingConfig cfg = streamConfig();
    ServingSimulator sim(cfg);
    ServingResult r = sim.run();

    EXPECT_EQ(r.stream.completed, cfg.streamRequests);
    EXPECT_GT(r.stream.batches, 0);
    EXPECT_LE(r.stream.meanBatchOccupancy,
              static_cast<double>(cfg.batch));
    EXPECT_NEAR(r.stream.throughputTokensPerSec,
                r.stream.throughputRequestsPerSec * cfg.outputTokens,
                1e-9);
    EXPECT_DOUBLE_EQ(sim.stats().get("completed"),
                     static_cast<double>(cfg.streamRequests));
    EXPECT_DOUBLE_EQ(sim.stats().get("hits") + sim.stats().get("misses"),
                     static_cast<double>(cfg.streamRequests));
}

/**
 * Legacy analytic mode must reproduce the pre-refactor ServingResult
 * bit for bit. The expected values below were captured from the seed
 * simulator (before the event-driven refactor) at full precision.
 */
TEST(LegacyAnalytic, BitIdenticalToPreRefactorResults)
{
    struct Golden
    {
        Platform platform;
        int experts, batch;
        RoutingDistribution routing;
        bool prefetch;
        double router, switches, exec, miss;
        int resident;
        double perPrompt;
    };
    const Golden goldens[] = {
        {Platform::Sn40l, 150, 8, RoutingDistribution::Uniform, false,
         0.071381331986999946, 0.080990572306249856, 0.30353325061599906,
         0.78125, 38, 0.037941656327000001},
        {Platform::Sn40l, 150, 1, RoutingDistribution::Zipf, true,
         0.0098736814430000052, 0.0017834058540937493,
         0.037941656327000001, 0.578125, 38, 0.037941656327000001},
        {Platform::DgxA100, 150, 8, RoutingDistribution::Uniform, false,
         0.21529729404278214, 2.5005839200000244, 0.90381248913024981,
         0.7421875, 45, 0.11297656114128235},
        {Platform::DgxH100, 64, 4, RoutingDistribution::RoundRobin, false,
         0.041411531070960489, 0.84230195200000557, 0.29321610899865513,
         1.0, 45, 0.073304027249663811},
    };

    for (const Golden &g : goldens) {
        ServingConfig cfg;
        cfg.mode = ServingMode::LegacyAnalytic;
        cfg.platform = g.platform;
        cfg.numExperts = g.experts;
        cfg.batch = g.batch;
        cfg.routing = g.routing;
        cfg.predictivePrefetch = g.prefetch;
        cfg.requests = 64;
        cfg.seed = 1;

        ServingResult r = ServingSimulator(cfg).run();
        EXPECT_FALSE(r.oom);
        EXPECT_DOUBLE_EQ(r.perBatch.routerSeconds, g.router);
        EXPECT_DOUBLE_EQ(r.perBatch.switchSeconds, g.switches);
        EXPECT_DOUBLE_EQ(r.perBatch.execSeconds, g.exec);
        EXPECT_DOUBLE_EQ(r.missRate, g.miss);
        EXPECT_EQ(r.residentCapacityExperts, g.resident);
        EXPECT_DOUBLE_EQ(r.expertSecondsPerPrompt, g.perPrompt);
    }
}

/**
 * The event-driven scheduler must also stay bit-identical across
 * engine work. These values were captured at full precision from the
 * engine as of PR 2 (shared_ptr-heap EventQueue, pre-drawn arrival
 * schedule, O(queue) batch formation); the pooled EventQueue,
 * closed-form channel booking, chained arrivals, indexed affinity
 * formation, and cost-model memoization all reproduce them exactly.
 * Run sizes sit below Distribution's reservoir threshold so quantiles
 * take the exact path.
 */
TEST(StreamScheduler, EventDrivenBitIdenticalToPr2Engine)
{
    ServingConfig base;
    base.mode = ServingMode::EventDriven;
    base.batch = 8;
    base.streamRequests = 384;
    base.arrivalRatePerSec = 16.0;
    base.routing = RoutingDistribution::Zipf;
    base.zipfS = 1.2;
    base.seed = 7;

    {
        ServingConfig cfg = base;
        cfg.scheduler = SchedulerPolicy::Fifo;
        ServingResult r = ServingSimulator(cfg).run();
        const StreamMetrics &m = r.stream;
        EXPECT_DOUBLE_EQ(m.p50LatencySeconds, 0.35731539149050001);
        EXPECT_DOUBLE_EQ(m.p95LatencySeconds, 0.64836733127539981);
        EXPECT_DOUBLE_EQ(m.p99LatencySeconds, 0.74342659457905025);
        EXPECT_DOUBLE_EQ(m.meanLatencySeconds, 0.37360555277126578);
        EXPECT_DOUBLE_EQ(m.maxLatencySeconds, 0.82763664012899996);
        EXPECT_DOUBLE_EQ(m.throughputRequestsPerSec, 16.516006801146176);
        EXPECT_DOUBLE_EQ(m.meanQueueDepth, 2.0606680190790523);
        EXPECT_DOUBLE_EQ(m.meanBatchOccupancy, 3.3684210526315788);
        EXPECT_DOUBLE_EQ(m.makespanSeconds, 23.250172067824);
        EXPECT_DOUBLE_EQ(r.missRate, 0.27083333333333331);
        EXPECT_EQ(m.batches, 114);
    }
    {
        ServingConfig cfg = base;
        cfg.scheduler = SchedulerPolicy::ExpertAffinity;
        ServingResult r = ServingSimulator(cfg).run();
        const StreamMetrics &m = r.stream;
        EXPECT_DOUBLE_EQ(m.p50LatencySeconds, 0.35731539149050001);
        EXPECT_DOUBLE_EQ(m.p99LatencySeconds, 0.75591874410116133);
        EXPECT_DOUBLE_EQ(m.maxLatencySeconds, 0.992359273323);
        EXPECT_DOUBLE_EQ(m.throughputRequestsPerSec, 16.516006801146176);
        EXPECT_DOUBLE_EQ(r.missRate, 0.27083333333333331);
        EXPECT_EQ(m.batches, 114);
    }
    {
        ServingConfig cfg = base;
        cfg.scheduler = SchedulerPolicy::ExpertAffinity;
        cfg.predictivePrefetch = true;
        cfg.prefetchDepth = 4;
        ServingResult r = ServingSimulator(cfg).run();
        EXPECT_DOUBLE_EQ(r.stream.p99LatencySeconds,
                         0.75591874410116133);
        EXPECT_DOUBLE_EQ(r.missRate, 0.19270833333333334);
        EXPECT_EQ(r.stream.batches, 114);
    }
    {
        ServingConfig cfg;
        cfg.mode = ServingMode::EventDriven;
        cfg.batch = 4;
        cfg.streamRequests = 256;
        cfg.arrival = ArrivalProcess::ClosedLoop;
        cfg.clients = 24;
        cfg.thinkSeconds = 0.25;
        cfg.routing = RoutingDistribution::Uniform;
        cfg.seed = 11;
        cfg.scheduler = SchedulerPolicy::ExpertAffinity;
        ServingResult r = ServingSimulator(cfg).run();
        const StreamMetrics &m = r.stream;
        EXPECT_DOUBLE_EQ(m.p50LatencySeconds, 1.0710945877325);
        EXPECT_DOUBLE_EQ(m.p95LatencySeconds, 1.2831636038100001);
        EXPECT_DOUBLE_EQ(m.p99LatencySeconds, 1.4539057563269999);
        EXPECT_DOUBLE_EQ(m.meanLatencySeconds, 0.87119944718866449);
        EXPECT_DOUBLE_EQ(m.throughputRequestsPerSec, 20.957721919665659);
        EXPECT_DOUBLE_EQ(m.meanQueueDepth, 14.288624085649671);
        EXPECT_DOUBLE_EQ(m.meanSwitchStallSeconds,
                         0.0040944381822615381);
        EXPECT_DOUBLE_EQ(m.p95SwitchStallSeconds, 0.017442405190399999);
        EXPECT_DOUBLE_EQ(r.missRate, 0.65625);
        EXPECT_EQ(m.batches, 65);
    }
}

TEST(StreamScheduler, RejectsBadStreamConfigs)
{
    ServingConfig cfg = streamConfig();
    cfg.streamRequests = 0;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    cfg = streamConfig();
    cfg.arrivalRatePerSec = 0.0;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    cfg = streamConfig();
    cfg.arrival = ArrivalProcess::ClosedLoop;
    cfg.clients = 0;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);

    cfg = streamConfig();
    cfg.arrival = ArrivalProcess::ClosedLoop;
    cfg.thinkSeconds = -0.5;
    EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
}
