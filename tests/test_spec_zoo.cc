/**
 * @file
 * Tests for the two first-class serving modes added on top of the
 * event-driven engine: speculative decoding (draft/verify batches
 * shaped per request through the exec/traffic hooks) and the PEFT
 * expert zoo (thousands of LoRA adapters sharing pinned base
 * weights). Covers the always-resident reservations carved out of the
 * HBM expert region, adapter sizing, config policing, the DMA
 * per-transfer setup cost the zoo's tiny transfers expose, engine
 * throughput ordering (spec beats autoregressive at high acceptance,
 * loses at zero), zoo hit-rate scaling with the region, conservation,
 * determinism, and serial vs parallel cluster bit-equality with both
 * features enabled.
 */

#include <gtest/gtest.h>

#include "coe/cluster.h"
#include "coe/serving.h"
#include "coe/serving_engine.h"
#include "mem/memory_system.h"
#include "runtime/spec_decode.h"
#include "sim/event_queue.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** Decode-heavy backlogged stream: tokens/s measures service rate. */
ServingConfig
backloggedSpecConfig()
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.mode = ServingMode::EventDriven;
    cfg.numExperts = 8;
    cfg.batch = 8;
    cfg.promptLen = 128;
    cfg.outputTokens = 200;
    cfg.streamRequests = 400;
    cfg.arrivalRatePerSec = 1000.0;
    cfg.seed = 7;
    return cfg;
}

double
tokensPerSec(const ServingConfig &cfg)
{
    ServingResult r = ServingSimulator(cfg).run();
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(r.stream.completed, cfg.streamRequests);
    return r.stream.throughputTokensPerSec;
}

} // namespace

// ----------------------------------------------------- adapter sizing

TEST(Zoo, LoraAdapterBytesScaleWithRankAndStayTiny)
{
    models::LlmConfig base = models::LlmConfig::llama2_7b();
    double r8 = loraAdapterBytes(base, 8);
    double r16 = loraAdapterBytes(base, 16);
    EXPECT_DOUBLE_EQ(r16, 2.0 * r8);
    // Orders of magnitude below the full expert (the zoo's premise).
    EXPECT_LT(r16, base.weightBytes() / 100.0);
    EXPECT_THROW(loraAdapterBytes(base, 0), sim::FatalError);
    EXPECT_THROW(loraAdapterBytes(base, -1), sim::FatalError);
}

TEST(Zoo, BuildServingZooIsUniformWhenDisabled)
{
    ServingConfig cfg;
    cfg.numExperts = 12;
    ExpertZoo plain = ExpertZoo::uniform(12, cfg.expertBase);
    ExpertZoo built = buildServingZoo(cfg);
    ASSERT_EQ(built.size(), plain.size());
    EXPECT_DOUBLE_EQ(built.totalBytes(), plain.totalBytes());

    cfg.zoo.enabled = true;
    cfg.zoo.rank = 16;
    ExpertZoo adapters = buildServingZoo(cfg);
    ASSERT_EQ(adapters.size(), 12u);
    double per = loraAdapterBytes(cfg.expertBase, 16);
    EXPECT_DOUBLE_EQ(adapters.expert(0).bytes, per);
    EXPECT_DOUBLE_EQ(adapters.totalBytes(), 12.0 * per);
    EXPECT_EQ(adapters.expert(0).domain, "peft");
}

// -------------------------------------------- expert-region reservations

TEST(Engine, ExpertRegionReservationsComeOutOfTheLru)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.mode = ServingMode::EventDriven;
    PhaseCosts costs = computePhaseCosts(cfg);
    std::int64_t base =
        ServingEngine::effectiveExpertRegionBytes(cfg, costs);
    EXPECT_EQ(base, costs.expertRegionBytes); // flags off: identity

    double weights = cfg.expertBase.weightBytes();
    ServingConfig spec = cfg;
    spec.specDecode.enabled = true;
    spec.specDecode.draftRatio = 0.05;
    std::int64_t with_draft =
        ServingEngine::effectiveExpertRegionBytes(spec, costs);
    EXPECT_EQ(with_draft,
              base - static_cast<std::int64_t>(0.05 * weights));

    ServingConfig zoo = cfg;
    zoo.zoo.enabled = true;
    std::int64_t with_base =
        ServingEngine::effectiveExpertRegionBytes(zoo, costs);
    EXPECT_EQ(with_base, base - static_cast<std::int64_t>(weights));

    // Reservations that swallow the whole region are a config error.
    ServingConfig broke = spec;
    broke.expertRegionBytes =
        static_cast<std::int64_t>(0.01 * weights);
    EXPECT_THROW(
        ServingEngine::effectiveExpertRegionBytes(broke, costs),
        sim::FatalError);
}

// ------------------------------------------------------ config policing

TEST(Config, SpecAndZooFieldsArePolicedOnlyWhenEnabled)
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.specDecode.gamma = -3; // ignored while disabled
    validateServingConfig(cfg);

    cfg.specDecode.enabled = true;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.specDecode.gamma = 4;
    cfg.specDecode.acceptRate = 1.5;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.specDecode.acceptRate = 0.8;
    cfg.specDecode.draftRatio = 1.0;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.specDecode.draftRatio = 0.05;
    validateServingConfig(cfg);

    cfg.zoo.enabled = true;
    cfg.zoo.rank = 0;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.zoo.rank = 16;
    cfg.zoo.churnEverySeconds = -1.0;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.zoo.churnEverySeconds = 0.0;
    cfg.zoo.dmaSetupSeconds = -1e-6;
    EXPECT_THROW(validateServingConfig(cfg), sim::FatalError);
    cfg.zoo.dmaSetupSeconds = 4e-6;
    validateServingConfig(cfg);
}

// ------------------------------------------------- DMA setup latency

TEST(Dma, SetupCostDelaysCompletionByExactlyTheSetupSpan)
{
    mem::MemorySystemConfig mcfg;
    mcfg.ddr.channels = 1;
    mcfg.ddr.perChannelBandwidth = 100e9;
    mcfg.hbm.channels = 1;
    mcfg.hbm.perChannelBandwidth = 1000e9;
    mcfg.dmaEngines = 1;
    double bytes = 1e9;

    auto run_one = [&](double setup) {
        mem::MemorySystemConfig c = mcfg;
        c.dmaSetupSeconds = setup;
        sim::EventQueue eq;
        mem::MemorySystem mem(eq, "m", c);
        sim::Tick done = -1;
        mem.load(0, 0, bytes, mem::TransferPriority::Demand,
                 [&]() { done = eq.now(); });
        eq.run();
        return done;
    };

    sim::Tick plain = run_one(0.0);
    sim::Tick with_setup = run_one(4e-6);
    EXPECT_EQ(with_setup, plain + sim::fromSeconds(4e-6));

    mem::MemorySystemConfig bad = mcfg;
    bad.dmaSetupSeconds = -1.0;
    EXPECT_THROW(bad.validate(), sim::FatalError);
}

// --------------------------------------------- engine-level throughput

TEST(SpecServing, BeatsAutoregressiveAtHighAcceptLosesAtZero)
{
    ServingConfig ar = backloggedSpecConfig();
    double ar_tps = tokensPerSec(ar);

    ServingConfig hi = ar;
    hi.specDecode.enabled = true;
    hi.specDecode.gamma = 4;
    hi.specDecode.acceptRate = 0.9;
    hi.specDecode.draftRatio = 0.05;
    double hi_tps = tokensPerSec(hi);
    EXPECT_GT(hi_tps, ar_tps);

    ServingConfig lo = hi;
    lo.specDecode.acceptRate = 0.0;
    double lo_tps = tokensPerSec(lo);
    EXPECT_LT(lo_tps, ar_tps); // pays the draft overhead for nothing
}

TEST(SpecServing, StepAccountingMatchesTheClosedForm)
{
    ServingConfig cfg = backloggedSpecConfig();
    cfg.specDecode.enabled = true;
    cfg.specDecode.gamma = 4;
    cfg.specDecode.acceptRate = 0.8;
    ServingResult r = ServingSimulator(cfg).run();
    EXPECT_GT(r.stream.specSteps, 0);
    EXPECT_GE(r.stream.specTokensPerStep, 1.0);
    EXPECT_LE(r.stream.specTokensPerStep,
              cfg.specDecode.gamma + 1.0);

    runtime::SpecDecodeConfig sd;
    sd.gamma = cfg.specDecode.gamma;
    sd.acceptRate = cfg.specDecode.acceptRate;
    // Measured mean within a few percent of E[tokens/step] (the last
    // partially-filled step of each request biases it slightly low).
    EXPECT_NEAR(r.stream.specTokensPerStep, sd.expectedTokensPerStep(),
                0.2);
}

TEST(SpecServing, DeterministicRunToRunAndConserved)
{
    ServingConfig cfg = backloggedSpecConfig();
    cfg.specDecode.enabled = true;
    cfg.specDecode.acceptRate = 0.7;
    ServingResult a = ServingSimulator(cfg).run();
    ServingResult b = ServingSimulator(cfg).run();
    EXPECT_EQ(a.stream.completed + a.stream.shed, cfg.streamRequests);
    EXPECT_EQ(a.stream.completed, b.stream.completed);
    EXPECT_EQ(a.stream.specSteps, b.stream.specSteps);
    EXPECT_DOUBLE_EQ(a.stream.throughputTokensPerSec,
                     b.stream.throughputTokensPerSec);
    EXPECT_DOUBLE_EQ(a.stream.p95LatencySeconds,
                     b.stream.p95LatencySeconds);
}

// ------------------------------------------------------- zoo streaming

TEST(ZooServing, HitRateRisesWithAdapterRegion)
{
    auto hit_rate = [](int slots) {
        ServingConfig cfg;
        cfg.platform = Platform::Sn40l;
        cfg.mode = ServingMode::EventDriven;
        cfg.numExperts = 500;
        cfg.zoo.enabled = true;
        cfg.zoo.rank = 16;
        cfg.batch = 1;
        cfg.routing = RoutingDistribution::Zipf;
        cfg.zipfS = 1.0;
        cfg.streamRequests = 400;
        cfg.arrivalRatePerSec = 16.0;
        cfg.seed = 7;
        double adapter = loraAdapterBytes(cfg.expertBase, 16);
        cfg.expertRegionBytes = static_cast<std::int64_t>(
            cfg.expertBase.weightBytes() + slots * adapter * 1.001);
        ServingResult r = ServingSimulator(cfg).run();
        EXPECT_FALSE(r.oom);
        EXPECT_EQ(r.stream.completed, cfg.streamRequests);
        return 1.0 - r.missRate;
    };
    double small = hit_rate(8);
    double mid = hit_rate(64);
    double large = hit_rate(500);
    EXPECT_LT(small, mid);
    EXPECT_LE(mid, large);
    EXPECT_GT(large, 0.4); // full zoo resident: only cold misses left
}

TEST(ZooServing, ChurnKeepsConservationAndChangesTraffic)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.mode = ServingMode::EventDriven;
    cfg.numExperts = 64;
    cfg.zoo.enabled = true;
    cfg.zoo.rank = 16;
    cfg.batch = 4;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.streamRequests = 600;
    cfg.arrivalRatePerSec = 32.0;
    cfg.seed = 11;

    ServingResult still = ServingSimulator(cfg).run();
    cfg.zoo.churnEverySeconds = 3.0;
    ServingResult churned = ServingSimulator(cfg).run();

    EXPECT_EQ(still.stream.completed, cfg.streamRequests);
    EXPECT_EQ(churned.stream.completed, cfg.streamRequests);
    // Rotating the hot adapters re-cools the LRU every period.
    EXPECT_GE(churned.missRate, still.missRate);

    ServingResult again = ServingSimulator(cfg).run();
    EXPECT_DOUBLE_EQ(churned.missRate, again.missRate);
    EXPECT_DOUBLE_EQ(churned.stream.p95LatencySeconds,
                     again.stream.p95LatencySeconds);
}

// --------------------------------------------------- cluster parity

TEST(ClusterSpecZoo, SerialAndParallelAgreeWithBothFeaturesOn)
{
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.dispatch = DispatchPolicy::RoundRobin;
    cfg.placement = PlacementPolicy::FullReplication;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.platform = Platform::Sn40l;
    cfg.node.numExperts = 200;
    cfg.node.zoo.enabled = true;
    cfg.node.zoo.rank = 16;
    cfg.node.zoo.churnEverySeconds = 5.0;
    cfg.node.specDecode.enabled = true;
    cfg.node.specDecode.gamma = 4;
    cfg.node.specDecode.acceptRate = 0.8;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 2000;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.arrivalRatePerSec = 48.0;
    cfg.node.seed = 7;

    ClusterResult serial = ClusterSimulator(cfg).run();
    EXPECT_FALSE(serial.oom);
    EXPECT_EQ(serial.stream.completed + serial.stream.shed +
                  serial.stream.lost,
              cfg.node.streamRequests);
    EXPECT_GT(serial.stream.specSteps, 0);

    ClusterConfig par = cfg;
    par.threads = 2;
    ClusterResult parallel = ClusterSimulator(par).run();

    EXPECT_EQ(serial.stream.completed, parallel.stream.completed);
    EXPECT_EQ(serial.stream.batches, parallel.stream.batches);
    EXPECT_EQ(serial.stream.specSteps, parallel.stream.specSteps);
    EXPECT_DOUBLE_EQ(serial.stream.p50LatencySeconds,
                     parallel.stream.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(serial.stream.p95LatencySeconds,
                     parallel.stream.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(serial.stream.makespanSeconds,
                     parallel.stream.makespanSeconds);
    EXPECT_DOUBLE_EQ(serial.missRate, parallel.missRate);
    ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
    for (std::size_t n = 0; n < serial.nodes.size(); ++n) {
        EXPECT_EQ(serial.nodes[n].completed, parallel.nodes[n].completed)
            << "node " << n;
        EXPECT_EQ(serial.nodes[n].misses, parallel.nodes[n].misses)
            << "node " << n;
    }
}
