/** @file Unit tests for the stats registry and deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

using namespace sn40l;

namespace {

/** Deterministic standard normal via Box-Muller on sim::Rng. */
class NormalDraws
{
  public:
    explicit NormalDraws(std::uint64_t seed) : rng_(seed) {}

    double
    next()
    {
        if (have_) {
            have_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = rng_.uniformDouble();
        double u2 = rng_.uniformDouble();
        double r = std::sqrt(-2.0 * std::log(u1));
        spare_ = r * std::sin(2.0 * M_PI * u2);
        have_ = true;
        return r * std::cos(2.0 * M_PI * u2);
    }

  private:
    sim::Rng rng_;
    double spare_ = 0.0;
    bool have_ = false;
};

} // namespace

TEST(StatSet, CountersAccumulate)
{
    sim::StatSet stats("unit");
    EXPECT_FALSE(stats.has("bytes"));
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 0.0);
    stats.inc("bytes", 100);
    stats.inc("bytes", 28);
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 128.0);
    EXPECT_TRUE(stats.has("bytes"));
}

TEST(StatSet, SetAndMax)
{
    sim::StatSet stats;
    stats.set("x", 5);
    stats.set("x", 3);
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.0);
    stats.max("peak", 10);
    stats.max("peak", 4);
    stats.max("peak", 12);
    EXPECT_DOUBLE_EQ(stats.get("peak"), 12.0);
}

TEST(StatSet, DumpIsSortedAndPrefixed)
{
    sim::StatSet stats("hbm");
    stats.inc("zeta", 1);
    stats.inc("alpha", 2);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_EQ(os.str(), "hbm.alpha 2\nhbm.zeta 1\n");
}

TEST(Distribution, RunningMinMaxAreExact)
{
    sim::Distribution d("lat");
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    d.record(5.0);
    d.record(-3.0);
    d.record(7.5);
    d.record(1.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.5);
    d.clear();
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    d.record(2.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 2.0);
}

TEST(Distribution, QuantileOutsideUnitIntervalIsFatal)
{
    sim::Distribution d("lat");
    d.record(1.0);
    d.record(2.0);
    EXPECT_THROW(d.quantile(-0.01), sim::FatalError);
    EXPECT_THROW(d.quantile(1.01), sim::FatalError);
    EXPECT_THROW(d.quantile(2.0), sim::FatalError);
    // The boundaries themselves stay legal.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 2.0);
}

TEST(Distribution, ExactModeMatchesUnboundedBelowThreshold)
{
    // Below the threshold the bounded distribution must be bit-
    // identical to one that never switches to the reservoir.
    sim::Distribution bounded("b", 1024);
    sim::Distribution unbounded(
        "u", std::numeric_limits<std::size_t>::max());
    sim::Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble() * 42.0;
        bounded.record(v);
        unbounded.record(v);
    }
    EXPECT_TRUE(bounded.exact());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(bounded.quantile(q), unbounded.quantile(q));
    EXPECT_DOUBLE_EQ(bounded.mean(), unbounded.mean());
    EXPECT_DOUBLE_EQ(bounded.min(), unbounded.min());
    EXPECT_DOUBLE_EQ(bounded.max(), unbounded.max());
}

TEST(Distribution, ReservoirQuantilesTrackLognormalWithinOnePercent)
{
    // Latency-like heavy-tailed distribution: lognormal(mu=-1.5,
    // sigma=0.6). 400k samples through the default 64Ki reservoir vs
    // the exact path; quantile estimates must stay within 1% relative
    // error (the draw is deterministic, so this is a regression bound
    // on sampling quality, not a flaky statistical assertion).
    const int n = 400'000;
    sim::Distribution bounded("b");
    sim::Distribution exact("e",
                            std::numeric_limits<std::size_t>::max());
    NormalDraws normal(2024);
    for (int i = 0; i < n; ++i) {
        double v = std::exp(-1.5 + 0.6 * normal.next());
        bounded.record(v);
        exact.record(v);
    }
    EXPECT_FALSE(bounded.exact());
    EXPECT_EQ(bounded.count(), static_cast<std::uint64_t>(n));
    EXPECT_LE(bounded.samples().size(),
              sim::Distribution::kDefaultMaxExactSamples);
    // Mean/min/max/count stay exact regardless of mode.
    EXPECT_DOUBLE_EQ(bounded.mean(), exact.mean());
    EXPECT_DOUBLE_EQ(bounded.min(), exact.min());
    EXPECT_DOUBLE_EQ(bounded.max(), exact.max());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double est = bounded.quantile(q);
        double ref = exact.quantile(q);
        EXPECT_NEAR(est, ref, 0.01 * ref)
            << "q=" << q << " est=" << est << " ref=" << ref;
    }
}

TEST(Distribution, ReservoirQuantilesTrackBimodalWithinOnePercent)
{
    // Bimodal mix (cache hit vs miss latencies): 80% around 10ms, 20%
    // around 250ms.
    const int n = 300'000;
    sim::Distribution bounded("b", 32768);
    sim::Distribution exact("e",
                            std::numeric_limits<std::size_t>::max());
    NormalDraws normal(77);
    sim::Rng pick(42);
    for (int i = 0; i < n; ++i) {
        double v = pick.uniformDouble() < 0.8
            ? 0.010 + 0.001 * normal.next()
            : 0.250 + 0.020 * normal.next();
        bounded.record(v);
        exact.record(v);
    }
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double est = bounded.quantile(q);
        double ref = exact.quantile(q);
        EXPECT_NEAR(est, ref, 0.01 * std::abs(ref))
            << "q=" << q << " est=" << est << " ref=" << ref;
    }
}

TEST(Distribution, ReservoirIsDeterministic)
{
    sim::Distribution a("a", 256), b("b", 256);
    sim::Rng ra(5), rb(5);
    for (int i = 0; i < 10'000; ++i) {
        a.record(ra.uniformDouble());
        b.record(rb.uniformDouble());
    }
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(DistributionMerge, CountAlwaysEqualsSumOfParts)
{
    sim::Distribution merged("m", 512);
    sim::Rng rng(3);
    std::uint64_t total = 0;
    for (int part = 0; part < 5; ++part) {
        sim::Distribution d("p", 512);
        int n = 100 + part * 400; // crosses the 512 threshold mid-way
        for (int i = 0; i < n; ++i)
            d.record(rng.uniformDouble());
        total += static_cast<std::uint64_t>(n);
        merged.merge(d);
        EXPECT_EQ(merged.count(), total);
    }
    EXPECT_LE(merged.samples().size(), 512u);
}

TEST(DistributionMerge, ExactWhileCombinedFitsThreshold)
{
    // Two exact-mode parts whose union still fits: the merge must be
    // bit-identical to recording everything into one distribution.
    sim::Distribution a("a", 4096), b("b", 4096), one("o", 4096);
    sim::Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble() * 7.0;
        a.record(v);
        one.record(v);
    }
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble() * 7.0;
        b.record(v);
        one.record(v);
    }
    a.merge(b);
    EXPECT_TRUE(a.exact());
    EXPECT_EQ(a.count(), one.count());
    EXPECT_DOUBLE_EQ(a.sum(), one.sum());
    EXPECT_DOUBLE_EQ(a.min(), one.min());
    EXPECT_DOUBLE_EQ(a.max(), one.max());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), one.quantile(q));
}

TEST(DistributionMerge, MergedReservoirLognormalWithinOnePercent)
{
    // The documented accuracy bound on the lossy path: merge two
    // reservoir-mode (> 64Ki samples each) lognormal streams and
    // require <= 1% relative quantile error against the exact pooled
    // distribution. Deterministic draws make this a regression bound,
    // not a flaky statistical assertion.
    const int n = 100'000;
    sim::Distribution a("a"), b("b");
    sim::Distribution exact("e",
                            std::numeric_limits<std::size_t>::max());
    NormalDraws na(11), nb(12);
    for (int i = 0; i < n; ++i) {
        double va = std::exp(-1.5 + 0.6 * na.next());
        double vb = std::exp(-0.8 + 0.4 * nb.next());
        a.record(va);
        b.record(vb);
        exact.record(va);
        exact.record(vb);
    }
    EXPECT_FALSE(a.exact());
    EXPECT_FALSE(b.exact());
    a.merge(b);
    EXPECT_EQ(a.count(), static_cast<std::uint64_t>(2 * n));
    // Sums associate differently ((sumA)+(sumB) vs interleaved), so
    // the mean agrees to rounding, not bit-exactly.
    EXPECT_NEAR(a.mean(), exact.mean(), 1e-12 * exact.mean());
    EXPECT_DOUBLE_EQ(a.min(), exact.min());
    EXPECT_DOUBLE_EQ(a.max(), exact.max());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double est = a.quantile(q);
        double ref = exact.quantile(q);
        EXPECT_NEAR(est, ref, 0.01 * ref)
            << "q=" << q << " est=" << est << " ref=" << ref;
    }
}

TEST(DistributionMerge, MixedModeMergeKeepsExactMoments)
{
    // Small exact part into a reservoir-mode part: moments stay exact
    // and the buffer stays bounded.
    sim::Distribution big("big", 1024), small("small", 1024);
    sim::Rng rng(23);
    for (int i = 0; i < 50'000; ++i)
        big.record(rng.uniformDouble());
    small.record(123.0); // far outside big's range
    small.record(-7.0);
    double want_sum = big.sum() + small.sum();
    big.merge(small);
    EXPECT_EQ(big.count(), 50'002u);
    EXPECT_DOUBLE_EQ(big.sum(), want_sum);
    EXPECT_DOUBLE_EQ(big.max(), 123.0);
    EXPECT_DOUBLE_EQ(big.min(), -7.0);
    EXPECT_LE(big.samples().size(), 1024u);
    // The exact extremes clamp quantiles even if the merged reservoir
    // dropped the outliers.
    EXPECT_DOUBLE_EQ(big.quantile(1.0), 123.0);
}

TEST(DistributionMerge, IncompatibleReservoirCapacitiesAreFatal)
{
    sim::Distribution a("a", 1024), b("b", 2048);
    a.record(1.0);
    b.record(2.0);
    EXPECT_THROW(a.merge(b), sim::FatalError);
    // Empty right-hand side with mismatched capacity is still a
    // caller bug — fail loudly rather than silently depending on
    // emptiness.
    sim::Distribution empty("e", 512);
    EXPECT_THROW(a.merge(empty), sim::FatalError);
}

TEST(DistributionMerge, MergeIntoEmptyAdoptsOther)
{
    sim::Distribution a("a", 256), b("b", 256);
    for (int i = 1; i <= 100; ++i)
        b.record(static_cast<double>(i));
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 50.5);
}

TEST(Rng, ExponentialMeanAndDeterminism)
{
    sim::Rng a(31), b(31);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = a.exponential(0.25);
        EXPECT_GE(v, 0.0);
        EXPECT_DOUBLE_EQ(v, b.exponential(0.25));
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, GaussianMomentsAndLognormalPositivity)
{
    sim::Rng rng(57);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian();
        sum += v;
        sumsq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
    sim::Rng ln(58);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(ln.lognormal(-1.0, 0.5), 0.0);
}

TEST(StatSet, CounterReferenceIsStable)
{
    sim::StatSet stats("hot");
    double &bytes = stats.counter("bytes");
    bytes += 128;
    stats.inc("other", 1); // map growth must not invalidate the ref
    bytes += 72;
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 200.0);
    EXPECT_TRUE(stats.has("bytes"));
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInBounds)
{
    sim::Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All 10 values should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    sim::Rng rng(9);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}
