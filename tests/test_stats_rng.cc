/** @file Unit tests for the stats registry and deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

using namespace sn40l;

namespace {

/** Deterministic standard normal via Box-Muller on sim::Rng. */
class NormalDraws
{
  public:
    explicit NormalDraws(std::uint64_t seed) : rng_(seed) {}

    double
    next()
    {
        if (have_) {
            have_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = rng_.uniformDouble();
        double u2 = rng_.uniformDouble();
        double r = std::sqrt(-2.0 * std::log(u1));
        spare_ = r * std::sin(2.0 * M_PI * u2);
        have_ = true;
        return r * std::cos(2.0 * M_PI * u2);
    }

  private:
    sim::Rng rng_;
    double spare_ = 0.0;
    bool have_ = false;
};

} // namespace

TEST(StatSet, CountersAccumulate)
{
    sim::StatSet stats("unit");
    EXPECT_FALSE(stats.has("bytes"));
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 0.0);
    stats.inc("bytes", 100);
    stats.inc("bytes", 28);
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 128.0);
    EXPECT_TRUE(stats.has("bytes"));
}

TEST(StatSet, SetAndMax)
{
    sim::StatSet stats;
    stats.set("x", 5);
    stats.set("x", 3);
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.0);
    stats.max("peak", 10);
    stats.max("peak", 4);
    stats.max("peak", 12);
    EXPECT_DOUBLE_EQ(stats.get("peak"), 12.0);
}

TEST(StatSet, DumpIsSortedAndPrefixed)
{
    sim::StatSet stats("hbm");
    stats.inc("zeta", 1);
    stats.inc("alpha", 2);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_EQ(os.str(), "hbm.alpha 2\nhbm.zeta 1\n");
}

TEST(Distribution, RunningMinMaxAreExact)
{
    sim::Distribution d("lat");
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    d.record(5.0);
    d.record(-3.0);
    d.record(7.5);
    d.record(1.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.5);
    d.clear();
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    d.record(2.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 2.0);
}

TEST(Distribution, QuantileOutsideUnitIntervalIsFatal)
{
    sim::Distribution d("lat");
    d.record(1.0);
    d.record(2.0);
    EXPECT_THROW(d.quantile(-0.01), sim::FatalError);
    EXPECT_THROW(d.quantile(1.01), sim::FatalError);
    EXPECT_THROW(d.quantile(2.0), sim::FatalError);
    // The boundaries themselves stay legal.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 2.0);
}

TEST(Distribution, ExactModeMatchesUnboundedBelowThreshold)
{
    // Below the threshold the bounded distribution must be bit-
    // identical to one that never switches to the reservoir.
    sim::Distribution bounded("b", 1024);
    sim::Distribution unbounded(
        "u", std::numeric_limits<std::size_t>::max());
    sim::Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble() * 42.0;
        bounded.record(v);
        unbounded.record(v);
    }
    EXPECT_TRUE(bounded.exact());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(bounded.quantile(q), unbounded.quantile(q));
    EXPECT_DOUBLE_EQ(bounded.mean(), unbounded.mean());
    EXPECT_DOUBLE_EQ(bounded.min(), unbounded.min());
    EXPECT_DOUBLE_EQ(bounded.max(), unbounded.max());
}

TEST(Distribution, ReservoirQuantilesTrackLognormalWithinOnePercent)
{
    // Latency-like heavy-tailed distribution: lognormal(mu=-1.5,
    // sigma=0.6). 400k samples through the default 64Ki reservoir vs
    // the exact path; quantile estimates must stay within 1% relative
    // error (the draw is deterministic, so this is a regression bound
    // on sampling quality, not a flaky statistical assertion).
    const int n = 400'000;
    sim::Distribution bounded("b");
    sim::Distribution exact("e",
                            std::numeric_limits<std::size_t>::max());
    NormalDraws normal(2024);
    for (int i = 0; i < n; ++i) {
        double v = std::exp(-1.5 + 0.6 * normal.next());
        bounded.record(v);
        exact.record(v);
    }
    EXPECT_FALSE(bounded.exact());
    EXPECT_EQ(bounded.count(), static_cast<std::uint64_t>(n));
    EXPECT_LE(bounded.samples().size(),
              sim::Distribution::kDefaultMaxExactSamples);
    // Mean/min/max/count stay exact regardless of mode.
    EXPECT_DOUBLE_EQ(bounded.mean(), exact.mean());
    EXPECT_DOUBLE_EQ(bounded.min(), exact.min());
    EXPECT_DOUBLE_EQ(bounded.max(), exact.max());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double est = bounded.quantile(q);
        double ref = exact.quantile(q);
        EXPECT_NEAR(est, ref, 0.01 * ref)
            << "q=" << q << " est=" << est << " ref=" << ref;
    }
}

TEST(Distribution, ReservoirQuantilesTrackBimodalWithinOnePercent)
{
    // Bimodal mix (cache hit vs miss latencies): 80% around 10ms, 20%
    // around 250ms.
    const int n = 300'000;
    sim::Distribution bounded("b", 32768);
    sim::Distribution exact("e",
                            std::numeric_limits<std::size_t>::max());
    NormalDraws normal(77);
    sim::Rng pick(42);
    for (int i = 0; i < n; ++i) {
        double v = pick.uniformDouble() < 0.8
            ? 0.010 + 0.001 * normal.next()
            : 0.250 + 0.020 * normal.next();
        bounded.record(v);
        exact.record(v);
    }
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double est = bounded.quantile(q);
        double ref = exact.quantile(q);
        EXPECT_NEAR(est, ref, 0.01 * std::abs(ref))
            << "q=" << q << " est=" << est << " ref=" << ref;
    }
}

TEST(Distribution, ReservoirIsDeterministic)
{
    sim::Distribution a("a", 256), b("b", 256);
    sim::Rng ra(5), rb(5);
    for (int i = 0; i < 10'000; ++i) {
        a.record(ra.uniformDouble());
        b.record(rb.uniformDouble());
    }
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(StatSet, CounterReferenceIsStable)
{
    sim::StatSet stats("hot");
    double &bytes = stats.counter("bytes");
    bytes += 128;
    stats.inc("other", 1); // map growth must not invalidate the ref
    bytes += 72;
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 200.0);
    EXPECT_TRUE(stats.has("bytes"));
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInBounds)
{
    sim::Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All 10 values should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    sim::Rng rng(9);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}
