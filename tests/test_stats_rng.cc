/** @file Unit tests for the stats registry and deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/rng.h"
#include "sim/stats.h"

using namespace sn40l;

TEST(StatSet, CountersAccumulate)
{
    sim::StatSet stats("unit");
    EXPECT_FALSE(stats.has("bytes"));
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 0.0);
    stats.inc("bytes", 100);
    stats.inc("bytes", 28);
    EXPECT_DOUBLE_EQ(stats.get("bytes"), 128.0);
    EXPECT_TRUE(stats.has("bytes"));
}

TEST(StatSet, SetAndMax)
{
    sim::StatSet stats;
    stats.set("x", 5);
    stats.set("x", 3);
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.0);
    stats.max("peak", 10);
    stats.max("peak", 4);
    stats.max("peak", 12);
    EXPECT_DOUBLE_EQ(stats.get("peak"), 12.0);
}

TEST(StatSet, DumpIsSortedAndPrefixed)
{
    sim::StatSet stats("hbm");
    stats.inc("zeta", 1);
    stats.inc("alpha", 2);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_EQ(os.str(), "hbm.alpha 2\nhbm.zeta 1\n");
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInBounds)
{
    sim::Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All 10 values should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    sim::Rng rng(9);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}
