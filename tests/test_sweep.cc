/**
 * @file
 * Tests for the parallel sweep runner, the generic LRU cache, and the
 * cost-model memoization layer (serving + GPU executor).
 */

#include <gtest/gtest.h>

#include <string>

#include "baseline/gpu_executor.h"
#include "coe/cost_cache.h"
#include "coe/sweep.h"
#include "models/transformer_builder.h"
#include "util/lru_cache.h"

using namespace sn40l;
using namespace sn40l::coe;

// ----------------------------------------------------------- LruCache

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    util::LruCache<std::string, int> lru(2);
    lru.insert("a", 1);
    lru.insert("b", 2);
    EXPECT_NE(lru.find("a"), nullptr); // refresh: a is now MRU
    lru.insert("c", 3);                // evicts b
    EXPECT_EQ(lru.find("b"), nullptr);
    ASSERT_NE(lru.find("a"), nullptr);
    EXPECT_EQ(*lru.find("a"), 1);
    ASSERT_NE(lru.find("c"), nullptr);
    EXPECT_EQ(*lru.find("c"), 3);
    EXPECT_EQ(lru.size(), 2u);
}

TEST(LruCache, InsertOverwritesAndCountsHitsMisses)
{
    util::LruCache<int, double> lru(4);
    EXPECT_EQ(lru.find(7), nullptr);
    lru.insert(7, 1.0);
    lru.insert(7, 2.0);
    ASSERT_NE(lru.find(7), nullptr);
    EXPECT_DOUBLE_EQ(*lru.find(7), 2.0);
    EXPECT_EQ(lru.size(), 1u);
    EXPECT_EQ(lru.misses(), 1u);
    EXPECT_EQ(lru.hits(), 2u);
}

// ------------------------------------------------------ CostModelCache

TEST(CostModelCache, MemoizesByWorkloadShape)
{
    CostModelCache &cache = CostModelCache::instance();
    cache.clear();

    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.batch = 4;
    spec.seqLen = 2048;
    spec.tensorParallel = 8;

    int computes = 0;
    auto compute = [&]() {
        ++computes;
        return 0.125;
    };
    std::string key = workloadCostKey("test-ctx", spec);
    EXPECT_DOUBLE_EQ(cache.seconds(key, compute), 0.125);
    EXPECT_DOUBLE_EQ(cache.seconds(key, compute), 0.125);
    EXPECT_EQ(computes, 1);

    // A different shape (or context) is a different entry.
    spec.batch = 8;
    EXPECT_DOUBLE_EQ(
        cache.seconds(workloadCostKey("test-ctx", spec),
                      [&]() { return 0.25; }),
        0.25);
    EXPECT_DOUBLE_EQ(
        cache.seconds(workloadCostKey("other-ctx", spec),
                      [&]() { return 0.5; }),
        0.5);
    cache.clear();
}

TEST(CostModelCache, KeyCoversModelArchitectureNotJustName)
{
    models::WorkloadSpec a;
    a.model = models::LlmConfig::llama2_7b();
    models::WorkloadSpec b = a;
    b.model.numLayers += 1; // same name, mutated architecture
    EXPECT_NE(workloadCostKey("ctx", a), workloadCostKey("ctx", b));
}

TEST(CostModelCache, ServingSimulatorPricesEachShapeOnce)
{
    CostModelCache::instance().clear();

    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.batch = 4;
    cfg.streamRequests = 32;
    cfg.arrivalRatePerSec = 16.0;
    cfg.seed = 3;

    ServingSimulator first(cfg);
    std::uint64_t misses_after_first = CostModelCache::instance().misses();
    EXPECT_GT(misses_after_first, 0u);

    // Same shape again: all graph pricing must come from the memo.
    ServingSimulator second(cfg);
    EXPECT_EQ(CostModelCache::instance().misses(), misses_after_first);
    EXPECT_GT(CostModelCache::instance().hits(), 0u);

    // And the memoized costs are the same costs.
    EXPECT_DOUBLE_EQ(first.phaseCosts().prefillSeconds,
                     second.phaseCosts().prefillSeconds);
    EXPECT_DOUBLE_EQ(first.phaseCosts().routerSeconds,
                     second.phaseCosts().routerSeconds);
    CostModelCache::instance().clear();
}

// -------------------------------------------------- GpuExecutor memo

TEST(GpuExecutorMemo, SameGraphPricedOnce)
{
    baseline::GpuExecutor::clearMemo();
    baseline::GpuExecutor executor(baseline::DgxConfig::dgxA100());

    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.batch = 2;
    spec.seqLen = 512;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    baseline::GpuRunResult a = executor.run(g);
    std::uint64_t misses = baseline::GpuExecutor::memoMisses();
    baseline::GpuRunResult b = executor.run(g);
    EXPECT_EQ(baseline::GpuExecutor::memoMisses(), misses);
    EXPECT_GT(baseline::GpuExecutor::memoHits(), 0u);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.kernels, b.kernels);

    // A different config prices separately even for the same graph.
    baseline::GpuExecutor h100(baseline::DgxConfig::dgxH100());
    baseline::GpuRunResult c = h100.run(g);
    EXPECT_NE(a.seconds, c.seconds);
    baseline::GpuExecutor::clearMemo();
}

// ------------------------------------------------------------- Sweep

TEST(SweepGrid, CartesianPointsInGridOrder)
{
    SweepGrid grid;
    grid.base.mode = ServingMode::EventDriven;
    grid.expertCounts = {50, 100};
    grid.arrivalRates = {8.0};
    grid.batchSizes = {1, 8};
    grid.policies = {SchedulerPolicy::Fifo};
    grid.seeds = {1, 2, 3};

    std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 12u);
    EXPECT_EQ(points.front().cfg.numExperts, 50);
    EXPECT_EQ(points.front().cfg.batch, 1);
    EXPECT_EQ(points.front().cfg.seed, 1u);
    // Seeds are innermost, experts outermost.
    EXPECT_EQ(points[1].cfg.seed, 2u);
    EXPECT_EQ(points[3].cfg.batch, 8);
    EXPECT_EQ(points[6].cfg.numExperts, 100);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, static_cast<int>(i));
}

TEST(SweepGrid, EmptyAxesInheritBaseConfig)
{
    SweepGrid grid;
    grid.base.numExperts = 42;
    grid.base.seed = 9;
    std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].cfg.numExperts, 42);
    EXPECT_EQ(points[0].cfg.seed, 9u);
}

TEST(SweepGrid, ClusterAxesLiftPointsOntoClusters)
{
    SweepGrid grid;
    grid.base.mode = ServingMode::EventDriven;
    grid.base.arrivalRatePerSec = 8.0;
    grid.nodeCounts = {1, 4};
    grid.placements = {PlacementPolicy::FullReplication,
                       PlacementPolicy::BalancedPartition};
    grid.dispatch = DispatchPolicy::LeastOutstanding;
    grid.seeds = {1, 2};

    std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 8u);
    // Nodes outermost, then placement, seeds innermost.
    EXPECT_EQ(points[0].nodes, 1);
    EXPECT_EQ(points[0].placement, PlacementPolicy::FullReplication);
    EXPECT_EQ(points[2].placement, PlacementPolicy::BalancedPartition);
    EXPECT_EQ(points[4].nodes, 4);
    EXPECT_EQ(points[4].dispatch, DispatchPolicy::LeastOutstanding);
    // Offered load scales with node count so points stay comparable.
    EXPECT_DOUBLE_EQ(points[0].cfg.arrivalRatePerSec, 8.0);
    EXPECT_DOUBLE_EQ(points[4].cfg.arrivalRatePerSec, 32.0);
    EXPECT_EQ(points[4].label.rfind("n4/partition/", 0), std::string::npos);
    EXPECT_EQ(points[6].label.rfind("n4/partition/", 0), 0u);

    // Classic grids stay single-node.
    SweepGrid classic;
    ASSERT_EQ(classic.points().size(), 1u);
    EXPECT_EQ(classic.points()[0].nodes, 0);
}

TEST(Sweep, ClusterPointsParallelMatchesSequential)
{
    SweepGrid grid;
    grid.base.mode = ServingMode::EventDriven;
    grid.base.streamRequests = 96;
    grid.base.routing = RoutingDistribution::Zipf;
    grid.base.zipfS = 1.0;
    grid.base.arrivalRatePerSec = 12.0;
    grid.nodeCounts = {1, 2, 4};
    grid.placements = {PlacementPolicy::FullReplication,
                       PlacementPolicy::ReplicateHotPartitionCold};
    grid.dispatch = DispatchPolicy::ExpertAffinity;
    grid.seeds = {1, 2};

    std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 12u);

    std::vector<SweepPointResult> seq = runSweep(points, 1);
    std::vector<SweepPointResult> par = runSweep(points, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const StreamMetrics &a = seq[i].result.stream;
        const StreamMetrics &b = par[i].result.stream;
        EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
        EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                         b.throughputRequestsPerSec);
        EXPECT_DOUBLE_EQ(seq[i].result.missRate, par[i].result.missRate);
        EXPECT_DOUBLE_EQ(seq[i].loadImbalance, par[i].loadImbalance);
        EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
        EXPECT_EQ(seq[i].expertReplicas, par[i].expertReplicas);
    }
}

TEST(Sweep, ParallelMatchesSequentialBitForBit)
{
    SweepGrid grid;
    grid.base.mode = ServingMode::EventDriven;
    grid.base.streamRequests = 64;
    grid.base.routing = RoutingDistribution::Zipf;
    grid.base.zipfS = 1.1;
    grid.expertCounts = {80, 150};
    grid.arrivalRates = {8.0, 24.0};
    grid.policies = {SchedulerPolicy::Fifo,
                     SchedulerPolicy::ExpertAffinity};
    grid.seeds = {1, 2};

    std::vector<SweepPoint> points = grid.points();
    ASSERT_EQ(points.size(), 16u);

    std::vector<SweepPointResult> seq = runSweep(points, 1);
    std::vector<SweepPointResult> par = runSweep(points, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const StreamMetrics &a = seq[i].result.stream;
        const StreamMetrics &b = par[i].result.stream;
        EXPECT_EQ(par[i].point.index, static_cast<int>(i));
        EXPECT_DOUBLE_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
        EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
        EXPECT_DOUBLE_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
        EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
        EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                         b.throughputRequestsPerSec);
        EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
        EXPECT_DOUBLE_EQ(seq[i].result.missRate, par[i].result.missRate);
        EXPECT_EQ(a.batches, b.batches);
        EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    }
}
