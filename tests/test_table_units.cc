/** @file Unit tests for table printing and unit formatting helpers. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"
#include "util/units.h"

using namespace sn40l;

TEST(Units, Constants)
{
    EXPECT_EQ(GiB, 1073741824LL);
    EXPECT_DOUBLE_EQ(GBps(200), 200e9);
    EXPECT_DOUBLE_EQ(TFLOPS(638), 638e12);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(util::formatBytes(13.48e9), "13.48 GB");
    EXPECT_EQ(util::formatBytes(512), "512.00 B");
    EXPECT_EQ(util::formatBytes(1.5e12), "1.50 TB");
}

TEST(Units, FormatBandwidthAndSeconds)
{
    EXPECT_EQ(util::formatBandwidth(1.8e12), "1.80 TB/s");
    EXPECT_EQ(util::formatSeconds(0.0129), "12.900 ms");
    EXPECT_EQ(util::formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(util::formatSeconds(3.2e-6), "3.200 us");
}

TEST(Table, AlignsColumns)
{
    util::Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name      | value |"), std::string::npos);
    EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, HandlesShortRowsAndSeparators)
{
    util::Table t({"a", "b", "c"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2", "3", "4"});
    std::ostringstream os;
    t.print(os);
    // Header separator + explicit separator.
    std::string out = os.str();
    std::size_t seps = 0;
    for (std::size_t pos = out.find("|--"); pos != std::string::npos;
         pos = out.find("|--", pos + 1)) {
        ++seps;
    }
    EXPECT_GE(seps, 2u);
}
