/** @file Unit tests for the dataflow graph IR. */

#include <gtest/gtest.h>

#include "graph/dataflow_graph.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::graph;

TEST(TensorShape, ElemsAndBytes)
{
    TensorShape s{128, 1024};
    EXPECT_EQ(s.elems(), 131072);
    EXPECT_EQ(s.bytes(DType::BF16), 262144);
    EXPECT_EQ(s.bytes(DType::FP32), 524288);
    EXPECT_EQ(s.str(), "128x1024");

    TensorShape scalar;
    EXPECT_EQ(scalar.elems(), 1);
    EXPECT_EQ(scalar.str(), "scalar");
    EXPECT_EQ(scalar.innermost(), 1);
}

TEST(TensorShape, RejectsNonPositiveDims)
{
    TensorShape bad{4, 0};
    EXPECT_THROW(bad.elems(), sim::SimPanic);
}

TEST(DType, SizesAndNames)
{
    EXPECT_EQ(dtypeBytes(DType::BF16), 2u);
    EXPECT_EQ(dtypeBytes(DType::FP32), 4u);
    EXPECT_EQ(dtypeBytes(DType::INT8), 1u);
    EXPECT_STREQ(dtypeName(DType::BF16), "bf16");
}

TEST(OpKinds, Classification)
{
    EXPECT_EQ(opClass(OpKind::Gemm), OpClass::Systolic);
    EXPECT_EQ(opClass(OpKind::Softmax), OpClass::Simd);
    EXPECT_EQ(opClass(OpKind::Transpose), OpClass::Memory);
    EXPECT_EQ(opClass(OpKind::AllReduce), OpClass::Collective);
    EXPECT_TRUE(isElementwise(OpKind::Mul));
    EXPECT_FALSE(isElementwise(OpKind::Softmax));
    // Conventional fusers cannot absorb transposes or softmax.
    EXPECT_FALSE(isGpuFusable(OpKind::Transpose));
    EXPECT_FALSE(isGpuFusable(OpKind::Softmax));
    EXPECT_TRUE(isGpuFusable(OpKind::Silu));
}

namespace {

/** Small two-gemm pipeline used by several tests. */
DataflowGraph
makePipeline()
{
    DataflowGraph g("pipeline");
    TensorId x = g.addTensor("x", {128, 256}, DType::BF16,
                             TensorKind::Input);
    TensorId w0 = g.addTensor("w0", {256, 512}, DType::BF16,
                              TensorKind::Weight);
    TensorId h = g.addTensor("h", {128, 512});
    TensorId w1 = g.addTensor("w1", {512, 64}, DType::BF16,
                              TensorKind::Weight);
    TensorId y = g.addTensor("y", {128, 64}, DType::BF16,
                             TensorKind::Output);
    g.addOp(OpKind::Gemm, "g0", {x, w0}, {h});
    g.addOp(OpKind::Gemm, "g1", {h, w1}, {y});
    return g;
}

} // namespace

TEST(DataflowGraph, BuildAndValidate)
{
    DataflowGraph g = makePipeline();
    EXPECT_EQ(g.numOps(), 2u);
    EXPECT_EQ(g.numTensors(), 5u);
    EXPECT_NO_THROW(g.validate());

    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(g.op(order[0]).name, "g0");
    EXPECT_EQ(g.op(order[1]).name, "g1");
}

TEST(DataflowGraph, ProducerConsumerLinks)
{
    DataflowGraph g = makePipeline();
    const Tensor &h = g.tensor(2);
    EXPECT_EQ(h.name, "h");
    EXPECT_EQ(g.op(h.producer).name, "g0");
    ASSERT_EQ(h.consumers.size(), 1u);
    EXPECT_EQ(g.op(h.consumers[0]).name, "g1");
}

TEST(DataflowGraph, GemmFlops)
{
    DataflowGraph g = makePipeline();
    // g0: 2 * 128 * 512 * 256
    EXPECT_DOUBLE_EQ(g.opFlops(0), 2.0 * 128 * 512 * 256);
    // g1: 2 * 128 * 64 * 512
    EXPECT_DOUBLE_EQ(g.opFlops(1), 2.0 * 128 * 64 * 512);
    EXPECT_DOUBLE_EQ(g.totalFlops(), g.opFlops(0) + g.opFlops(1));
}

TEST(DataflowGraph, SparsityDiscountsFlopsAndWeights)
{
    DataflowGraph g("sparse");
    TensorId x = g.addTensor("x", {64, 64}, DType::BF16, TensorKind::Input);
    TensorId w = g.addTensor("w", {64, 64}, DType::BF16, TensorKind::Weight);
    TensorId y = g.addTensor("y", {64, 64}, DType::BF16, TensorKind::Output);
    g.addOp(OpKind::Gemm, "g", {x, w}, {y}, /*sparsity=*/0.875);

    EXPECT_DOUBLE_EQ(g.opFlops(0), 2.0 * 64 * 64 * 64 * 0.125);
    EXPECT_DOUBLE_EQ(g.weightBytes(), 64 * 64 * 2 * 0.125);
    // Reads discount the sparse weight but not the dense input.
    EXPECT_DOUBLE_EQ(g.opReadBytes(0), 64 * 64 * 2 + 64 * 64 * 2 * 0.125);
}

TEST(DataflowGraph, SimdFlopsUseOutputElements)
{
    DataflowGraph g("simd");
    TensorId a = g.addTensor("a", {32, 32}, DType::BF16, TensorKind::Input);
    TensorId b = g.addTensor("b", {32, 32});
    TensorId c = g.addTensor("c", {32, 32}, DType::BF16, TensorKind::Output);
    g.addOp(OpKind::Softmax, "sm", {a}, {b});
    g.addOp(OpKind::Mul, "mul", {b, a}, {c});
    EXPECT_DOUBLE_EQ(g.opFlops(0), 5.0 * 1024);
    EXPECT_DOUBLE_EQ(g.opFlops(1), 1.0 * 1024);
    // Memory-class ops execute zero FLOPs.
    DataflowGraph g2("mem");
    TensorId t0 = g2.addTensor("t0", {8, 8}, DType::BF16, TensorKind::Input);
    TensorId t1 = g2.addTensor("t1", {8, 8}, DType::BF16,
                               TensorKind::Output);
    g2.addOp(OpKind::Transpose, "t", {t0}, {t1});
    EXPECT_DOUBLE_EQ(g2.opFlops(0), 0.0);
}

TEST(DataflowGraph, DoubleProducerPanics)
{
    DataflowGraph g("bad");
    TensorId x = g.addTensor("x", {4, 4}, DType::BF16, TensorKind::Input);
    TensorId y = g.addTensor("y", {4, 4});
    g.addOp(OpKind::Relu, "r1", {x}, {y});
    EXPECT_THROW(g.addOp(OpKind::Relu, "r2", {x}, {y}), sim::SimPanic);
}

TEST(DataflowGraph, ValidateCatchesProducerlessActivation)
{
    DataflowGraph g("bad2");
    TensorId x = g.addTensor("x", {4, 4}, DType::BF16, TensorKind::Input);
    TensorId orphan = g.addTensor("orphan", {4, 4});
    TensorId y = g.addTensor("y", {4, 4}, DType::BF16, TensorKind::Output);
    g.addOp(OpKind::Relu, "r", {x, orphan}, {y});
    EXPECT_THROW(g.validate(), sim::SimPanic);
}

TEST(DataflowGraph, KvCacheMayBeRewritten)
{
    DataflowGraph g("kv");
    TensorId k = g.addTensor("k_new", {1, 128}, DType::BF16,
                             TensorKind::Input);
    TensorId cache = g.addTensor("kcache", {4096, 128}, DType::BF16,
                                 TensorKind::KvCache);
    g.addOp(OpKind::KvAppend, "append", {k}, {cache});
    // Reading the cache back does not create a cycle.
    TensorId out = g.addTensor("scores", {1, 4096}, DType::BF16,
                               TensorKind::Output);
    g.addOp(OpKind::BatchGemm, "qk", {k, cache}, {out});
    EXPECT_NO_THROW(g.validate());
}

TEST(DataflowGraph, InvalidIdsPanic)
{
    DataflowGraph g("bad3");
    EXPECT_THROW(g.tensor(0), sim::SimPanic);
    EXPECT_THROW(g.op(-1), sim::SimPanic);
    EXPECT_THROW(g.addOp(OpKind::Relu, "r", {42}, {}), sim::SimPanic);
}
