/** @file Tests for the Tile / RduChip structural models. */

#include <gtest/gtest.h>

#include <set>

#include "arch/tile.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::arch;

TEST(Tile, ResourcePoolsMatchConfig)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Tile tile(cfg, "t0");
    EXPECT_EQ(tile.numPcus(), 260);
    EXPECT_EQ(tile.numPmus(), 260);
    EXPECT_EQ(tile.sramBytes(), 260LL * 512 * 1024);
    EXPECT_EQ(tile.mesh().cols(), cfg.meshCols);
    EXPECT_EQ(tile.mesh().rows(), cfg.meshRows);
}

TEST(Tile, UnitCoordinatesAreOnMeshAndDistinct)
{
    ChipConfig cfg = ChipConfig::sn40l();
    Tile tile(cfg, "t0");

    std::set<std::pair<int, int>> pcu_coords;
    for (int i = 0; i < tile.numPcus(); ++i) {
        Coord c = tile.pcuCoord(i);
        EXPECT_TRUE(tile.mesh().contains(c));
        EXPECT_TRUE(pcu_coords.insert({c.x, c.y}).second);
    }
    EXPECT_THROW(tile.pcuCoord(tile.numPcus()), sim::SimPanic);
    EXPECT_THROW(tile.pmuCoord(-1), sim::SimPanic);
}

TEST(Tile, MeshTooSmallIsFatal)
{
    ChipConfig cfg = ChipConfig::sn40l();
    cfg.meshCols = 4;
    cfg.meshRows = 4; // 16 < 260 PCUs
    EXPECT_THROW(Tile(cfg, "bad"), sim::FatalError);
}

TEST(RduChip, AggregatesAndPlaceableFractions)
{
    ChipConfig cfg = ChipConfig::sn40l();
    RduChip chip(cfg);
    EXPECT_EQ(chip.numTiles(), 4);
    EXPECT_EQ(chip.totalPcus(), 1040);
    EXPECT_EQ(chip.placeablePcus(), 936); // 90% of 1040
    EXPECT_EQ(chip.placeablePmus(), 936);
    EXPECT_EQ(chip.placeableSramBytes(), 936LL * 512 * 1024);
    EXPECT_EQ(chip.tile(0).numPcus() * chip.numTiles(),
              chip.totalPcus());
}

TEST(RduChip, PcuModelAccessibleThroughTile)
{
    ChipConfig cfg = ChipConfig::sn40l();
    RduChip chip(cfg);
    Tile &tile = chip.tile(0);
    // The systolic model should be consistent chip-wide.
    EXPECT_GT(tile.pcuModel().systolicTileCycles(32, 6, 64), 64);
    EXPECT_GT(tile.agcu().launchOverhead(Orchestration::Software),
              tile.agcu().launchOverhead(Orchestration::Hardware));
}
