/**
 * @file
 * Tests for the RDN traffic analyzer (Section VII performance
 * debugging), the launch-phase gap model, and the Chrome-trace
 * writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/agcu.h"
#include "compiler/placer.h"
#include "compiler/traffic_analyzer.h"
#include "models/transformer_builder.h"
#include "runtime/executor.h"
#include "runtime/runner.h"
#include "sim/log.h"

using namespace sn40l;

namespace {

compiler::Kernel
placedDecodeKernel(const graph::DataflowGraph &g,
                   const arch::ChipConfig &chip,
                   const compiler::FusionOptions &opt)
{
    auto kernels = compiler::partitionGraph(g, chip, opt);
    compiler::Kernel k = kernels.at(1); // a mid-graph fused kernel
    compiler::placeKernel(g, chip, opt, k);
    return k;
}

} // namespace

TEST(TrafficAnalyzer, FindsFlowsAndBoundedCongestion)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 1024;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    compiler::FusionOptions opt;
    opt.tensorParallel = 8;
    compiler::Kernel k = placedDecodeKernel(g, chip, opt);

    compiler::TrafficAnalyzer analyzer(chip);
    auto report = analyzer.analyze(g, k, 50e-6, 8);

    EXPECT_GT(report.flows, k.ops.size() / 2);
    EXPECT_GE(report.congestionFactor, report.throttledFactor);
    EXPECT_GE(report.throttledFactor, 1.0);
    EXPECT_EQ(report.stageCenters.size(), k.stages.size());
    // Every stage center is on the socket-level mesh.
    int rows = chip.meshRows * chip.tileCount();
    for (const auto &c : report.stageCenters) {
        EXPECT_GE(c.x, 0);
        EXPECT_LT(c.x, chip.meshCols);
        EXPECT_GE(c.y, 0);
        EXPECT_LT(c.y, rows);
    }
}

TEST(TrafficAnalyzer, ThrottlingHelpsExactlyWhenBursty)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 1024;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    compiler::FusionOptions opt;
    opt.tensorParallel = 8;
    compiler::Kernel k = placedDecodeKernel(g, chip, opt);

    compiler::TrafficAnalyzer smooth(chip, 1.0);
    compiler::TrafficAnalyzer bursty(chip, 4.0);
    auto rs = smooth.analyze(g, k, 50e-6, 8);
    auto rb = bursty.analyze(g, k, 50e-6, 8);

    // With burst factor 1 throttling changes nothing; with 4x bursts
    // the unthrottled factor is strictly worse whenever any link is
    // meaningfully loaded.
    EXPECT_DOUBLE_EQ(rs.congestionFactor, rs.throttledFactor);
    EXPECT_GE(rb.congestionFactor, rb.throttledFactor);
    EXPECT_THROW(compiler::TrafficAnalyzer(chip, 0.5), sim::FatalError);
}

TEST(LaunchPhases, HardwarePrefetchHidesLoads)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::Agcu agcu(cfg, "agcu");
    sim::Tick loads = cfg.programLoadOverhead + cfg.argumentLoadOverhead;

    // SW: host sync + loads, regardless of history.
    EXPECT_EQ(agcu.launchGap(arch::Orchestration::Software, 0),
              cfg.swLaunchOverhead + loads);
    EXPECT_EQ(agcu.launchGap(arch::Orchestration::Software,
                             sim::fromMs(10)),
              cfg.swLaunchOverhead + loads);

    // HW: a long-running previous kernel hides the loads entirely.
    EXPECT_EQ(agcu.launchGap(arch::Orchestration::Hardware,
                             sim::fromMs(10)),
              cfg.hwLaunchOverhead);
    // A very short previous kernel exposes the remainder.
    sim::Tick short_exec = loads / 3;
    EXPECT_EQ(agcu.launchGap(arch::Orchestration::Hardware, short_exec),
              cfg.hwLaunchOverhead + (loads - short_exec));
    // The first kernel (no history) pays the full load.
    EXPECT_EQ(agcu.launchGap(arch::Orchestration::Hardware, 0),
              cfg.hwLaunchOverhead + loads);
}

TEST(TraceWriter, RecordsAndEmitsChromeJson)
{
    runtime::TraceWriter trace;
    trace.record("kernels", "decoder.L0", sim::fromUs(5), sim::fromUs(50));
    trace.record("orchestration", "software", 0, sim::fromUs(5));
    EXPECT_EQ(trace.eventCount(), 2u);

    std::ostringstream os;
    trace.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("decoder.L0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
}

TEST(TraceWriter, ExecutorIntegration)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 256;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::NodeConfig cfg = arch::NodeConfig::sn40lNode(8);
    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    compiler::Program prog = compiler::compile(g, cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    executor.setTrace(&trace);
    executor.run(prog, arch::Orchestration::Software);

    // One orchestration + one kernel event per launch.
    EXPECT_EQ(trace.eventCount(),
              2 * static_cast<std::size_t>(prog.totalLaunches));
}
