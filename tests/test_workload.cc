/**
 * @file
 * Tests for the workload scenario subsystem (coe/workload.h):
 * trace record/replay round-trips (bit-identical metrics, corrupt
 * files FatalError), multi-tenant mixes, conversational sessions,
 * burst shaping, SLO admission control, and the RateShape arithmetic
 * the legacy drivers now route through.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/serving.h"
#include "coe/workload.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingConfig
streamConfig()
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 150;
    cfg.batch = 8;
    cfg.streamRequests = 300;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.arrivalRatePerSec = 24.0;
    cfg.scheduler = SchedulerPolicy::ExpertAffinity;
    cfg.seed = 11;
    return cfg;
}

/** RAII temp path that is removed on scope exit. */
struct TempFile
{
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

void
expectStreamBitIdentical(const StreamMetrics &a, const StreamMetrics &b)
{
    EXPECT_DOUBLE_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_DOUBLE_EQ(a.maxLatencySeconds, b.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                     b.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.meanBatchOccupancy, b.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.meanSwitchStallSeconds, b.meanSwitchStallSeconds);
    EXPECT_DOUBLE_EQ(a.p95SwitchStallSeconds, b.p95SwitchStallSeconds);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.shed, b.shed);
}

} // namespace

// ------------------------------------------------------- rate shape

TEST(RateShape, FlatLeavesBaseUntouched)
{
    RateShape shape;
    EXPECT_TRUE(shape.flat());
    // Not just equal: the flat path must not multiply at all, so the
    // legacy gap arithmetic stays bit-identical.
    EXPECT_DOUBLE_EQ(shape.instantaneous(7.3, 123.456), 7.3);
}

TEST(RateShape, BurstWindowsMultiplyInsideOnly)
{
    RateShape shape;
    shape.burstFactor = 4.0;
    shape.burstEverySeconds = 10.0;
    shape.burstSeconds = 2.0;
    EXPECT_DOUBLE_EQ(shape.instantaneous(8.0, 0.5), 32.0);
    EXPECT_DOUBLE_EQ(shape.instantaneous(8.0, 1.999), 32.0);
    EXPECT_DOUBLE_EQ(shape.instantaneous(8.0, 2.5), 8.0);
    EXPECT_DOUBLE_EQ(shape.instantaneous(8.0, 10.5), 32.0); // repeats
}

TEST(RateShape, DiurnalMatchesLegacyExpression)
{
    RateShape shape;
    shape.diurnalAmplitude = 0.9;
    shape.diurnalPeriodSeconds = 10.0;
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    double t = 3.7, base = 16.0;
    double want = base * (1.0 + 0.9 * std::sin(kTwoPi * t / 10.0));
    EXPECT_DOUBLE_EQ(shape.instantaneous(base, t), want);
}

// ------------------------------------------------- trace round trip

TEST(TraceRoundTrip, ServeRecordReplayIsBitIdentical)
{
    TempFile trace("serve_roundtrip.jsonl");
    ServingConfig rec = streamConfig();
    rec.workload.traceOut = trace.path;
    ServingResult recorded = ServingSimulator(rec).run();

    ServingConfig rep = streamConfig();
    rep.workload.traceIn = trace.path;
    ServingResult replayed = ServingSimulator(rep).run();

    expectStreamBitIdentical(recorded.stream, replayed.stream);
    EXPECT_DOUBLE_EQ(recorded.missRate, replayed.missRate);
}

TEST(TraceRoundTrip, SessionWorkloadRecordReplayIsBitIdentical)
{
    // Sessions are the hard case: follow-up arrivals are coupled to
    // completions in the recording run, and the trace must capture
    // the resulting stream exactly.
    TempFile trace("sessions_roundtrip.jsonl");
    ServingConfig rec = streamConfig();
    rec.workload.tenants = 4;
    rec.workload.sessionFollowProb = 0.5;
    rec.workload.sessionThinkSeconds = 0.2;
    rec.workload.sloSeconds = 3.0;
    rec.workload.traceOut = trace.path;
    ServingResult recorded = ServingSimulator(rec).run();

    ServingConfig rep = streamConfig();
    rep.workload.traceIn = trace.path;
    ServingResult replayed = ServingSimulator(rep).run();

    expectStreamBitIdentical(recorded.stream, replayed.stream);
    EXPECT_DOUBLE_EQ(recorded.missRate, replayed.missRate);
}

TEST(TraceRoundTrip, ClusterRecordReplayIsBitIdentical)
{
    TempFile trace("cluster_roundtrip.jsonl");
    ClusterConfig rec;
    rec.nodes = 3;
    rec.placement = PlacementPolicy::ReplicateHotPartitionCold;
    rec.dispatch = DispatchPolicy::LeastOutstanding;
    rec.node = streamConfig();
    rec.node.arrivalRatePerSec = 48.0;
    rec.node.workload.traceOut = trace.path;
    ClusterResult recorded = ClusterSimulator(rec).run();

    ClusterConfig rep = rec;
    rep.node.workload.traceOut.clear();
    rep.node.workload.traceIn = trace.path;
    ClusterResult replayed = ClusterSimulator(rep).run();

    expectStreamBitIdentical(recorded.stream, replayed.stream);
    EXPECT_DOUBLE_EQ(recorded.missRate, replayed.missRate);
    ASSERT_EQ(recorded.nodes.size(), replayed.nodes.size());
    for (std::size_t n = 0; n < recorded.nodes.size(); ++n) {
        EXPECT_EQ(recorded.nodes[n].completed,
                  replayed.nodes[n].completed);
        EXPECT_EQ(recorded.nodes[n].dispatched,
                  replayed.nodes[n].dispatched);
        EXPECT_EQ(recorded.nodes[n].misses, replayed.nodes[n].misses);
    }
}

TEST(TraceRoundTrip, ReplaySameTrafficAcrossConfigs)
{
    // The point of replay: two different serving configs fed the SAME
    // recorded traffic. Arrival streams must agree (completed counts
    // equal), behaviour may differ (miss rates move with the policy).
    TempFile trace("cross_config.jsonl");
    ServingConfig rec = streamConfig();
    rec.workload.traceOut = trace.path;
    ServingSimulator(rec).run();

    ServingConfig fifo = streamConfig();
    fifo.scheduler = SchedulerPolicy::Fifo;
    fifo.workload.traceIn = trace.path;
    ServingConfig affinity = streamConfig();
    affinity.workload.traceIn = trace.path;

    ServingResult f = ServingSimulator(fifo).run();
    ServingResult a = ServingSimulator(affinity).run();
    EXPECT_EQ(f.stream.completed, a.stream.completed);
    EXPECT_LE(a.missRate, f.missRate); // affinity groups same-expert work
}

TEST(TraceRoundTrip, ReplayUnderDifferentSloOverridesDeadlines)
{
    // One trace, three SLO settings: workload.sloSeconds overrides
    // the recorded per-request deadlines at replay, so admission
    // tightens monotonically while the traffic stays identical.
    TempFile trace("slo_sweep.jsonl");
    ServingConfig rec = streamConfig();
    rec.arrivalRatePerSec = 120.0; // overloaded: admission matters
    rec.workload.traceOut = trace.path;
    ServingSimulator(rec).run();

    auto shedWith = [&](double slo) {
        ServingConfig rep = streamConfig();
        rep.workload.traceIn = trace.path;
        rep.workload.sloSeconds = slo;
        return ServingSimulator(rep).run().stream.shed;
    };
    std::int64_t none = shedWith(0.0);   // recorded deadlines (none)
    std::int64_t loose = shedWith(10.0);
    std::int64_t tight = shedWith(0.5);
    EXPECT_EQ(none, 0);
    EXPECT_GT(tight, loose);
}

// ---------------------------------------------------- trace parsing

TEST(TraceFormat, RoundTripsEveryField)
{
    TempFile trace("fields.jsonl");
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 3; ++i) {
        TraceEntry e;
        e.request.id = i;
        e.tick = 1000000LL * (i + 1) + i;
        e.request.tenant = i % 2;
        e.request.expert = 17 + i;
        e.request.session = i == 1 ? 4 : -1;
        e.request.turn = i == 1 ? 3 : 0;
        e.request.promptLen = 512 * i;
        e.request.outputTokens = 20 + i;
        e.request.priority = i;
        e.request.deadlineSeconds = i == 2 ? 1.2345678901234567 : 0.0;
        entries.push_back(e);
    }
    writeTrace(trace.path, entries);
    std::vector<TraceEntry> back = loadTrace(trace.path);
    ASSERT_EQ(back.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(back[i].tick, entries[i].tick);
        EXPECT_EQ(back[i].request.tenant, entries[i].request.tenant);
        EXPECT_EQ(back[i].request.expert, entries[i].request.expert);
        EXPECT_EQ(back[i].request.session, entries[i].request.session);
        EXPECT_EQ(back[i].request.turn, entries[i].request.turn);
        EXPECT_EQ(back[i].request.promptLen,
                  entries[i].request.promptLen);
        EXPECT_EQ(back[i].request.outputTokens,
                  entries[i].request.outputTokens);
        EXPECT_EQ(back[i].request.priority, entries[i].request.priority);
        // Deadlines survive the text round-trip bit-exactly (printed
        // at 17 significant digits).
        EXPECT_DOUBLE_EQ(back[i].request.deadlineSeconds,
                         entries[i].request.deadlineSeconds);
    }
}

TEST(TraceFormat, CorruptAndTruncatedTracesAreFatal)
{
    auto write = [](const std::string &path, const std::string &body) {
        std::ofstream out(path);
        out << body;
    };
    auto line = [](int id, long long tick) {
        return "{\"id\":" + std::to_string(id) + ",\"tick\":" +
            std::to_string(tick) +
            ",\"tenant\":0,\"expert\":1,\"session\":-1,\"turn\":0,"
            "\"prompt\":0,\"tokens\":0,\"prio\":0,\"deadline\":0}\n";
    };

    TempFile t("corrupt.jsonl");
    // Missing file.
    EXPECT_THROW(loadTrace(t.path + ".nope"), sim::FatalError);
    // Empty file.
    write(t.path, "");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Garbage header.
    write(t.path, "not json\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Unsupported version.
    write(t.path, "{\"sn40l_trace\":9,\"requests\":1}\n" + line(0, 5));
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Zero requests.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":0}\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Truncated: header promises 3, file has 1.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":3}\n" + line(0, 5));
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Malformed field value.
    write(t.path,
          "{\"sn40l_trace\":1,\"requests\":1}\n"
          "{\"id\":zero,\"tick\":5,\"tenant\":0,\"expert\":1,"
          "\"session\":-1,\"turn\":0,\"prompt\":0,\"tokens\":0,"
          "\"prio\":0,\"deadline\":0}\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Wrong key order (schema drift is corruption, not tolerance).
    write(t.path,
          "{\"sn40l_trace\":1,\"requests\":1}\n"
          "{\"tick\":5,\"id\":0,\"tenant\":0,\"expert\":1,"
          "\"session\":-1,\"turn\":0,\"prompt\":0,\"tokens\":0,"
          "\"prio\":0,\"deadline\":0}\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Non-sequential ids.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":2}\n" + line(0, 5) +
                      line(2, 9));
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Ticks going backwards.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":2}\n" + line(0, 9) +
                      line(1, 5));
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Trailing garbage after the promised requests.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":1}\n" + line(0, 5) +
                      "extra\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Garbage hiding behind a blank line is still garbage
    // (regression: the check must scan all remaining lines, not just
    // the first).
    write(t.path, "{\"sn40l_trace\":1,\"requests\":1}\n" + line(0, 5) +
                      "\n\ngarbage\n");
    EXPECT_THROW(loadTrace(t.path), sim::FatalError);
    // Pure trailing newlines are tolerated (editors add them).
    write(t.path, "{\"sn40l_trace\":1,\"requests\":1}\n" + line(0, 5) +
                      "\n");
    EXPECT_EQ(loadTrace(t.path).size(), 1u);
    // A valid minimal trace still parses after all that.
    write(t.path, "{\"sn40l_trace\":1,\"requests\":1}\n" + line(0, 5));
    EXPECT_EQ(loadTrace(t.path).size(), 1u);
}

// ------------------------------------------------------ scenarios

TEST(MultiTenantWorkload, DeterministicAndConservesRequests)
{
    ServingConfig cfg = streamConfig();
    cfg.workload.tenants = 4;
    ServingResult a = ServingSimulator(cfg).run();
    ServingResult b = ServingSimulator(cfg).run();
    EXPECT_EQ(a.stream.completed, cfg.streamRequests);
    EXPECT_DOUBLE_EQ(a.stream.p99LatencySeconds,
                     b.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
}

TEST(MultiTenantWorkload, DerivedMixShapesAreSane)
{
    ServingConfig cfg = streamConfig();
    cfg.workload.tenants = 5;
    cfg.workload.sloSeconds = 2.0;
    std::vector<TenantSpec> mix = buildTenantMix(cfg);
    ASSERT_EQ(mix.size(), 5u);
    std::vector<int> offsets;
    for (const TenantSpec &t : mix) {
        EXPECT_GT(t.rateShare, 0.0);
        EXPECT_GE(t.expertOffset, 0);
        EXPECT_LT(t.expertOffset, cfg.numExperts);
        EXPECT_LE(t.minOutputTokens, t.maxOutputTokens);
        EXPECT_DOUBLE_EQ(t.sloSeconds, 2.0);
        offsets.push_back(t.expertOffset);
    }
    // Whales first: shares decay with index.
    EXPECT_GT(mix[0].rateShare, mix[4].rateShare);
    // Hot sets rotate: offsets are distinct.
    std::sort(offsets.begin(), offsets.end());
    EXPECT_EQ(std::unique(offsets.begin(), offsets.end()),
              offsets.end());
}

TEST(SessionWorkload, FollowUpTurnsReuseTheSessionExpert)
{
    ServingConfig cfg = streamConfig();
    cfg.streamRequests = 200;
    cfg.workload.tenants = 2;
    cfg.workload.sessionFollowProb = 0.7;
    cfg.workload.sessionThinkSeconds = 0.1;

    // Run through the model directly to inspect the emitted stream.
    sim::EventQueue eq;
    auto model = makeWorkloadModel(cfg);
    std::map<int, int> sessionExpert; // session -> expert of turn 0
    std::int64_t followUps = 0;
    model->bind(eq, [&](const TrafficRequest &r) {
        if (r.session >= 0) {
            auto it = sessionExpert.find(r.session);
            if (it == sessionExpert.end()) {
                EXPECT_EQ(r.turn, 0);
                sessionExpert[r.session] = r.expert;
            } else {
                ++followUps;
                EXPECT_EQ(r.expert, it->second)
                    << "turn " << r.turn << " switched expert";
                EXPECT_GT(r.turn, 0);
            }
        }
        // Completion immediately (no engine): sessions advance.
        model->onRequestComplete(r);
    });
    model->start();
    eq.run();
    EXPECT_EQ(model->emitted(), cfg.streamRequests);
    EXPECT_GT(followUps, 0);
}

TEST(SloAdmission, OverloadShedsAndConservesArrivals)
{
    ServingConfig cfg = streamConfig();
    cfg.streamRequests = 300;
    cfg.arrivalRatePerSec = 200.0; // far past saturation
    cfg.workload.sloSeconds = 1.0;
    ServingSimulator sim(cfg);
    ServingResult r = sim.run();
    EXPECT_GT(r.stream.shed, 0);
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              static_cast<std::int64_t>(cfg.streamRequests));
    EXPECT_NEAR(r.stream.shedRate,
                static_cast<double>(r.stream.shed) / cfg.streamRequests,
                1e-12);
    // Admission control bounds the queue the SLO cares about: the
    // same overload without shedding has a far worse p99.
    ServingConfig open = cfg;
    open.workload.sloSeconds = 0.0;
    ServingResult ro = ServingSimulator(open).run();
    EXPECT_EQ(ro.stream.shed, 0);
    EXPECT_GT(ro.stream.p99LatencySeconds, r.stream.p99LatencySeconds);
}

TEST(SloAdmission, PriorityTiersShedLowFirst)
{
    ServingConfig cfg = streamConfig();
    cfg.streamRequests = 300;
    cfg.arrivalRatePerSec = 120.0;
    TenantSpec low, high;
    low.name = "free";
    low.priority = 0;
    low.sloSeconds = 1.0;
    high.name = "paid";
    high.priority = 2;
    high.sloSeconds = 1.0;
    cfg.workload.tenantSpecs = {low, high};

    ServingSimulator sim(cfg);
    ServingResult r = sim.run();
    EXPECT_GT(r.stream.shed, 0);
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              static_cast<std::int64_t>(cfg.streamRequests));
    // Priority widens the tolerated estimate by (1 + p): the paid
    // tier must shed strictly less than the free tier even though
    // both share the same deadline and arrival rate.
    EXPECT_LT(sim.stats().get("shed_tenant_1"),
              sim.stats().get("shed_tenant_0"));
}

TEST(SloAdmission, ClosedLoopShedReturnsClientToThePool)
{
    // Regression: a shed request never reaches onBatchComplete, so
    // without an explicit shed hook the client pool would shrink by
    // one per shed and the run could stall with budget unspent
    // (panic: "workload did not emit its full budget"). An absurdly
    // tight deadline sheds every arrival — the run must still drain
    // its full budget through think-and-retry.
    ServingConfig cfg = streamConfig();
    cfg.arrival = ArrivalProcess::ClosedLoop;
    cfg.clients = 8;
    cfg.streamRequests = 100;
    cfg.thinkSeconds = 0.01;
    cfg.workload.sloSeconds = 1e-6;
    ServingResult r = ServingSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              static_cast<std::int64_t>(cfg.streamRequests));
    EXPECT_EQ(r.stream.shed,
              static_cast<std::int64_t>(cfg.streamRequests));

    // A feasible deadline mid-overload sheds some, completes the rest.
    cfg.workload.sloSeconds = 0.6;
    cfg.thinkSeconds = 0.0;
    ServingResult mixed = ServingSimulator(cfg).run();
    EXPECT_EQ(mixed.stream.completed + mixed.stream.shed,
              static_cast<std::int64_t>(cfg.streamRequests));
    EXPECT_GT(mixed.stream.completed, 0);
}

TEST(BurstWorkload, FlashCrowdsDegradeTheTail)
{
    ServingConfig flat = streamConfig();
    flat.streamRequests = 400;
    ServingConfig bursty = flat;
    bursty.workload.shape.burstFactor = 4.0;
    bursty.workload.shape.burstEverySeconds = 5.0;
    bursty.workload.shape.burstSeconds = 1.0;

    ServingResult f = ServingSimulator(flat).run();
    ServingResult b = ServingSimulator(bursty).run();
    EXPECT_EQ(b.stream.completed, bursty.streamRequests);
    EXPECT_GT(b.stream.p99LatencySeconds, f.stream.p99LatencySeconds);
}

TEST(WorkloadValidation, RejectsContradictoryConfigs)
{
    {
        ServingConfig cfg = streamConfig();
        cfg.workload.tenants = 0;
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        cfg.workload.sloSeconds = -1.0;
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        cfg.workload.sessionFollowProb = 1.5;
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        cfg.workload.shape.burstFactor = 0.5;
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        cfg.workload.shape.burstFactor = 2.0; // but no window
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        cfg.arrival = ArrivalProcess::ClosedLoop;
        cfg.clients = 4;
        cfg.workload.tenants = 3; // mixes are open-loop
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
    {
        ServingConfig cfg = streamConfig();
        TenantSpec t;
        t.rateShare = 0.0;
        cfg.workload.tenantSpecs = {t};
        EXPECT_THROW(ServingSimulator{cfg}, sim::FatalError);
    }
}
