/**
 * @file
 * Shared sn40l_run flag tables. The serve / sweep / cluster
 * subcommands register the same workload, arrival, scenario, and
 * core-serving flags; those groups (and the cross-flag validation
 * that goes with them) live here so each flag is defined exactly
 * once and every subcommand rejects the same contradictions with the
 * same messages. The PR-6 control-plane flags (--controller-*,
 * --schedule, --plan-*) are declared here too, so the cluster
 * subcommand and any future consumer share one definition.
 *
 * Everything is a header-only helper over tools::FlagParser; the
 * functions only wire callbacks, so including this costs nothing at
 * runtime.
 */

#ifndef SN40L_TOOLS_CLI_CONFIG_H
#define SN40L_TOOLS_CLI_CONFIG_H

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/controller.h"
#include "coe/serving.h"
#include "coe/workload.h"

#include "flag_parser.h"

namespace sn40l::tools {

inline coe::Platform
platformByName(const std::string &name)
{
    if (name == "sn40l") return coe::Platform::Sn40l;
    if (name == "dgx-a100") return coe::Platform::DgxA100;
    if (name == "dgx-h100") return coe::Platform::DgxH100;
    std::cerr << "unknown platform '" << name
              << "' (expected sn40l, dgx-a100, or dgx-h100)\n";
    std::exit(1);
}

// ------------------------------------------- shared flag groups

/** Tracks which optional flags were set, for contradiction checks. */
struct WorkloadFlagState
{
    bool setZipfS = false;
    bool setPrefetchDepth = false;
    bool setPrefetchWindow = false;
};

/**
 * Workload/memory flags shared by serve, sweep, and cluster: the
 * platform, the per-prompt shape, the routing distribution, and the
 * expert-streaming memory system.
 */
inline void
addWorkloadFlags(FlagParser &p, coe::ServingConfig &cfg,
                 WorkloadFlagState &st)
{
    p.value("--platform", [&](const std::string &v) {
        cfg.platform = platformByName(v);
    });
    p.value("--tokens", [&](const std::string &v) {
        cfg.outputTokens = std::stoi(v);
    });
    p.value("--requests", [&](const std::string &v) {
        cfg.streamRequests = std::stoi(v);
    });
    p.value("--routing", [&](const std::string &v) {
        cfg.routing = coe::routingDistributionFromName(v);
    });
    p.value("--zipf-s", [&](const std::string &v) {
        cfg.zipfS = std::stod(v);
        st.setZipfS = true;
    });
    p.flag("--prefetch", [&]() { cfg.predictivePrefetch = true; });
    p.value("--prefetch-depth", [&](const std::string &v) {
        cfg.prefetchDepth = std::stoi(v);
        st.setPrefetchDepth = true;
    });
    p.value("--prefetch-window", [&](const std::string &v) {
        cfg.prefetchWindow = std::stoi(v);
        st.setPrefetchWindow = true;
    });
    p.value("--dma-engines", [&](const std::string &v) {
        cfg.dmaEngines = std::stoi(v);
    });
    p.value("--expert-region-gb", [&p, &cfg](const std::string &v) {
        double gb = std::stod(v);
        if (gb <= 0.0)
            p.fail("--expert-region-gb must be positive");
        cfg.expertRegionBytes = static_cast<std::int64_t>(gb * 1e9);
    });
}

/** Reject contradictory workload flag combinations. */
inline void
validateWorkloadFlags(const FlagParser &p, const coe::ServingConfig &cfg,
                      const WorkloadFlagState &st)
{
    if (st.setZipfS && cfg.routing != coe::RoutingDistribution::Zipf)
        p.fail("--zipf-s requires --routing zipf");
    if (st.setPrefetchDepth && !cfg.predictivePrefetch)
        p.fail("--prefetch-depth requires --prefetch");
    if (st.setPrefetchWindow && !cfg.predictivePrefetch)
        p.fail("--prefetch-window requires --prefetch");
    if (cfg.prefetchWindow < 0)
        p.fail("--prefetch-window must be non-negative");
    if (cfg.dmaEngines <= 0)
        p.fail("--dma-engines must be at least 1");
    if (cfg.prefetchDepth < 0)
        p.fail("--prefetch-depth must be non-negative");
}

struct ArrivalFlagState
{
    bool setArrivalRate = false;
    bool setClosedLoop = false;
    bool setClients = false;
    bool setThink = false;
};

/** Arrival-process flags shared by serve and cluster. */
inline void
addArrivalFlags(FlagParser &p, coe::ServingConfig &cfg,
                ArrivalFlagState &st)
{
    p.value("--arrival-rate", [&](const std::string &v) {
        cfg.arrivalRatePerSec = std::stod(v);
        st.setArrivalRate = true;
    });
    p.flag("--closed-loop", [&]() {
        cfg.arrival = coe::ArrivalProcess::ClosedLoop;
        st.setClosedLoop = true;
    });
    p.value("--clients", [&](const std::string &v) {
        cfg.clients = std::stoi(v);
        st.setClients = true;
    });
    p.value("--think", [&](const std::string &v) {
        cfg.thinkSeconds = std::stod(v);
        st.setThink = true;
    });
}

inline void
validateArrivalFlags(const FlagParser &p, const coe::ServingConfig &cfg,
                     const ArrivalFlagState &st)
{
    if (cfg.arrival == coe::ArrivalProcess::ClosedLoop &&
        st.setArrivalRate)
        p.fail("--arrival-rate is an open-loop parameter; it cannot "
               "be combined with --closed-loop");
    if (cfg.arrival != coe::ArrivalProcess::ClosedLoop &&
        (st.setClients || st.setThink))
        p.fail("--clients/--think only apply to --closed-loop runs");
}

/** Tracks which workload-scenario flags were set. */
struct ScenarioFlagState
{
    std::string workloadName;
    bool setWorkload = false;
    bool setTenants = false;
    bool setSession = false;
    bool setBurst = false;
};

/**
 * Workload-scenario flags shared by serve, sweep, and cluster: tenant
 * mixes, conversational sessions, burst shaping, SLO admission, and
 * trace record/replay (coe/workload.h).
 */
inline void
addScenarioFlags(FlagParser &p, coe::ServingConfig &cfg,
                 ScenarioFlagState &st)
{
    p.value("--workload", [&](const std::string &v) {
        st.workloadName = v;
        st.setWorkload = true;
    });
    p.value("--tenants", [&](const std::string &v) {
        cfg.workload.tenants = std::stoi(v);
        st.setTenants = true;
    });
    p.value("--slo-ms", [&p, &cfg](const std::string &v) {
        double ms = std::stod(v);
        if (ms <= 0.0)
            p.fail("--slo-ms must be positive");
        cfg.workload.sloSeconds = ms / 1000.0;
    });
    p.value("--session-prob", [&](const std::string &v) {
        cfg.workload.sessionFollowProb = std::stod(v);
        st.setSession = true;
    });
    p.value("--session-think", [&](const std::string &v) {
        cfg.workload.sessionThinkSeconds = std::stod(v);
        st.setSession = true;
    });
    p.value("--session-turns", [&](const std::string &v) {
        cfg.workload.sessionMaxTurns = std::stoi(v);
        st.setSession = true;
    });
    p.value("--burst-factor", [&](const std::string &v) {
        cfg.workload.shape.burstFactor = std::stod(v);
        st.setBurst = true;
    });
    p.value("--burst-every", [&](const std::string &v) {
        cfg.workload.shape.burstEverySeconds = std::stod(v);
        st.setBurst = true;
    });
    p.value("--burst-seconds", [&](const std::string &v) {
        cfg.workload.shape.burstSeconds = std::stod(v);
        st.setBurst = true;
    });
    p.value("--trace-out", [&](const std::string &v) {
        cfg.workload.traceOut = v;
    });
    p.value("--trace-in", [&](const std::string &v) {
        cfg.workload.traceIn = v;
    });
}

/**
 * Resolve and cross-check the scenario flags. Library-level
 * validation (validateWorkloadConfig) still runs afterwards; this
 * layer catches the purely-CLI contradictions with messages naming
 * the subcommand.
 */
inline void
validateScenarioFlags(const FlagParser &p, coe::ServingConfig &cfg,
                      const ScenarioFlagState &st,
                      const ArrivalFlagState &ast)
{
    if (st.setWorkload) {
        if (st.workloadName == "poisson") {
            if (ast.setClosedLoop)
                p.fail("--workload poisson contradicts --closed-loop");
            cfg.arrival = coe::ArrivalProcess::Poisson;
        } else if (st.workloadName == "closed-loop") {
            cfg.arrival = coe::ArrivalProcess::ClosedLoop;
        } else if (st.workloadName == "mix") {
            if (!st.setTenants)
                cfg.workload.tenants = 4;
        } else {
            p.fail("unknown --workload '" + st.workloadName +
                   "' (expected poisson, closed-loop, or mix)");
        }
    }
    if (st.setTenants) {
        if (st.setWorkload && st.workloadName != "mix")
            p.fail("--tenants requires --workload mix");
        if (cfg.workload.tenants < 1)
            p.fail("--tenants must be at least 1");
    }
    if ((st.setTenants || st.setSession) && ast.setClosedLoop)
        p.fail("tenant mixes and sessions are open-loop workloads; "
               "drop --closed-loop");
    if (!cfg.workload.traceIn.empty() &&
        (st.setWorkload || st.setTenants || st.setSession ||
         st.setBurst || ast.setClosedLoop || ast.setArrivalRate))
        p.fail("--trace-in replays a recorded request stream; "
               "workload-generator flags (--workload/--tenants/"
               "--session-*/--burst-*/--closed-loop/--arrival-rate) "
               "do not apply");
}

/**
 * Core serving scalars shared by serve and cluster (sweep keeps list
 * versions of these as grid axes). The scheduler stays a string so
 * serve can accept its "both" comparison mode; callers resolve it
 * after parsing.
 */
inline void
addCoreServingFlags(FlagParser &p, coe::ServingConfig &cfg,
                    std::string &scheduler_name,
                    bool *set_experts = nullptr)
{
    p.value("--experts", [&cfg, set_experts](const std::string &v) {
        cfg.numExperts = std::stoi(v);
        if (set_experts)
            *set_experts = true;
    });
    p.value("--batch", [&](const std::string &v) {
        cfg.batch = std::stoi(v);
    });
    p.value("--seed", [&](const std::string &v) {
        cfg.seed = std::stoull(v);
    });
    p.value("--scheduler",
            [&](const std::string &v) { scheduler_name = v; });
}

// --------------------------------- spec-decode / expert-zoo group

/** Tracks which spec-decode / zoo tuning flags were set. */
struct SpecZooFlagState
{
    bool setGamma = false;
    bool setAccept = false;
    bool setDraftRatio = false;
    bool setZooAdapters = false;
    bool setZooRank = false;
    bool setZooChurn = false;
};

/**
 * Speculative-decoding and PEFT expert-zoo serving modes (serve,
 * sweep, cluster). --spec-decode turns the decode phase into
 * draft/verify rounds against a small always-resident draft model;
 * --zoo-adapters N replaces the full-weight expert set with N LoRA
 * adapters sharing pinned base weights, so expert switches become
 * many tiny DMA transfers.
 */
inline void
addSpecZooFlags(FlagParser &p, coe::ServingConfig &cfg,
                SpecZooFlagState &st)
{
    p.flag("--spec-decode", [&]() { cfg.specDecode.enabled = true; });
    p.value("--spec-gamma", [&](const std::string &v) {
        cfg.specDecode.gamma = std::stoi(v);
        st.setGamma = true;
    });
    p.value("--spec-accept", [&](const std::string &v) {
        cfg.specDecode.acceptRate = std::stod(v);
        st.setAccept = true;
    });
    p.value("--spec-draft-ratio", [&](const std::string &v) {
        cfg.specDecode.draftRatio = std::stod(v);
        st.setDraftRatio = true;
    });
    p.value("--zoo-adapters", [&](const std::string &v) {
        cfg.zoo.enabled = true;
        cfg.numExperts = std::stoi(v);
        st.setZooAdapters = true;
    });
    p.value("--zoo-rank", [&](const std::string &v) {
        cfg.zoo.rank = std::stoi(v);
        st.setZooRank = true;
    });
    p.value("--zoo-churn", [&](const std::string &v) {
        cfg.zoo.churnEverySeconds = std::stod(v);
        st.setZooChurn = true;
    });
}

/**
 * Reject contradictory spec-decode / zoo combinations. @p set_experts
 * reports whether the caller saw an explicit --experts (scalar or
 * sweep-axis): --zoo-adapters replaces the expert set, so combining
 * the two is ambiguous.
 */
inline void
validateSpecZooFlags(const FlagParser &p, const coe::ServingConfig &cfg,
                     const SpecZooFlagState &st, bool set_experts)
{
    if (!cfg.specDecode.enabled &&
        (st.setGamma || st.setAccept || st.setDraftRatio))
        p.fail("--spec-gamma/--spec-accept/--spec-draft-ratio require "
               "--spec-decode");
    if (cfg.specDecode.enabled) {
        if (cfg.specDecode.gamma < 0)
            p.fail("--spec-gamma must be non-negative");
        if (cfg.specDecode.acceptRate < 0.0 ||
            cfg.specDecode.acceptRate > 1.0)
            p.fail("--spec-accept must be in [0, 1]");
        if (cfg.specDecode.draftRatio <= 0.0 ||
            cfg.specDecode.draftRatio >= 1.0)
            p.fail("--spec-draft-ratio must be in (0, 1)");
    }
    if (!st.setZooAdapters && (st.setZooRank || st.setZooChurn))
        p.fail("--zoo-rank/--zoo-churn require --zoo-adapters");
    if (st.setZooAdapters) {
        if (set_experts)
            p.fail("--zoo-adapters replaces the expert set; it cannot "
                   "be combined with --experts");
        if (cfg.numExperts <= 0)
            p.fail("--zoo-adapters must be positive");
        if (cfg.zoo.rank <= 0)
            p.fail("--zoo-rank must be at least 1");
        if (cfg.zoo.churnEverySeconds < 0.0)
            p.fail("--zoo-churn must be non-negative");
    }
}

// --------------------------------------------- execution groups

/** Parallel-execution flags (cluster subcommand). */
struct ExecFlagState
{
    int threads = 1;
    bool setThreads = false;
};

/**
 * --threads / -j pick the worker count for the run. 1 is the
 * bit-exact single-queue path; N > 1 shards the event queue per node
 * (ClusterConfig::threads).
 */
inline void
addExecFlags(FlagParser &p, ExecFlagState &st)
{
    auto parse = [&p, &st](const std::string &v) {
        st.threads = std::stoi(v);
        if (st.threads < 1)
            p.fail("--threads must be at least 1");
        st.setThreads = true;
    };
    p.value("--threads", parse);
    p.value("-j", parse);
}

/**
 * The cluster --threads flag matrix. Parallel runs compose fine with
 * --controller*, --schedule, and --trace-in (control actuations fire
 * at window barriers); what they cannot do is anything that closes a
 * feedback loop from the node shards back into arrival generation or
 * dispatch mid-window. Those are rejected here with CLI vocabulary;
 * ClusterSimulator re-validates at the config level for non-CLI
 * callers.
 */
inline void
validateClusterExecFlags(const FlagParser &p, const ExecFlagState &st,
                         const coe::ServingConfig &cfg,
                         coe::DispatchPolicy dispatch,
                         const ArrivalFlagState &ast,
                         const ScenarioFlagState &sst)
{
    if (st.threads <= 1)
        return;
    if (cfg.arrival == coe::ArrivalProcess::ClosedLoop)
        p.fail("the cluster subcommand cannot combine --threads > 1 "
               "with closed-loop arrivals (--closed-loop/--workload "
               "closed-loop): batch completions re-issue clients "
               "instantly, leaving parallel windows zero lookahead");
    if (ast.setClients || ast.setThink)
        p.fail("the cluster subcommand cannot combine --threads > 1 "
               "with --clients/--think (closed-loop parameters)");
    if (sst.setSession && cfg.workload.traceIn.empty())
        p.fail("the cluster subcommand cannot combine --threads > 1 "
               "with generated --session-* workloads (follow-up turns "
               "are coupled to node-side completions); record a trace "
               "and replay it with --trace-in, or use --threads 1");
    if (dispatch == coe::DispatchPolicy::LeastOutstanding)
        p.fail("the cluster subcommand cannot combine --threads > 1 "
               "with --dispatch least-outstanding (per-node queue "
               "state is stale mid-window); use round-robin or "
               "expert-affinity");
}

// ------------------------------------------ control-plane groups

struct ControllerFlagState
{
    bool setPolicy = false;
    bool setTuning = false; ///< any --controller-* besides --controller
};

/**
 * Autoscaling control-plane flags (cluster subcommand). --controller
 * picks the policy; the rest tune it and require an active policy.
 */
inline void
addControllerFlags(FlagParser &p, coe::ControllerConfig &cfg,
                   ControllerFlagState &st)
{
    p.value("--controller", [&](const std::string &v) {
        cfg.policy = coe::controllerPolicyFromName(v);
        st.setPolicy = true;
    });
    p.value("--controller-tick", [&](const std::string &v) {
        cfg.tickSeconds = std::stod(v);
        st.setTuning = true;
    });
    p.value("--controller-min", [&](const std::string &v) {
        cfg.minNodes = std::stoi(v);
        st.setTuning = true;
    });
    p.value("--controller-max", [&](const std::string &v) {
        cfg.maxNodes = std::stoi(v);
        st.setTuning = true;
    });
    p.value("--controller-up-depth", [&](const std::string &v) {
        cfg.scaleUpQueueDepth = std::stod(v);
        st.setTuning = true;
    });
    p.value("--controller-down-depth", [&](const std::string &v) {
        cfg.scaleDownQueueDepth = std::stod(v);
        st.setTuning = true;
    });
    p.value("--controller-target-util", [&](const std::string &v) {
        cfg.targetUtilization = std::stod(v);
        st.setTuning = true;
    });
    p.value("--controller-cooldown", [&](const std::string &v) {
        cfg.cooldownTicks = std::stoi(v);
        st.setTuning = true;
    });
    p.value("--controller-hot", [&](const std::string &v) {
        cfg.hotExpertTrack = std::stoi(v);
        st.setTuning = true;
    });
    p.value("--controller-log", [&](const std::string &v) {
        cfg.logPath = v;
        st.setTuning = true;
    });
}

inline void
validateControllerFlags(const FlagParser &p,
                        const coe::ControllerConfig &cfg,
                        const ControllerFlagState &st)
{
    if (st.setTuning && cfg.policy == coe::ControllerPolicy::Static)
        p.fail("--controller-* tuning flags require an active "
               "--controller policy (reactive or target-util)");
}

/**
 * Parse a --schedule list: comma-separated KIND:AT[:ARG] entries
 * where KIND is drain, rejoin, or rate; AT is seconds; ARG is the
 * node id for drain/rejoin (default 0) or the required rate factor
 * for rate. Example: drain:3:1,rejoin:8:1,rate:12:0.5.
 */
inline std::vector<coe::ScheduledAction>
parseScheduleList(const FlagParser &p, const std::string &csv)
{
    std::vector<coe::ScheduledAction> actions;
    for (const std::string &entry :
         parseList<std::string>(p, csv, +[](const std::string &s) {
             return s;
         })) {
        std::vector<std::string> parts;
        std::string part;
        std::stringstream ss(entry);
        while (std::getline(ss, part, ':'))
            parts.push_back(part);
        if (parts.size() < 2 || parts.size() > 3)
            p.fail("--schedule entry '" + entry +
                   "' is not KIND:AT[:ARG]");
        coe::ScheduledAction a;
        a.atSeconds = std::stod(parts[1]);
        if (parts[0] == "drain") {
            a.kind = coe::ActionKind::Drain;
            if (parts.size() == 3)
                a.node = std::stoi(parts[2]);
        } else if (parts[0] == "rejoin") {
            a.kind = coe::ActionKind::Rejoin;
            if (parts.size() == 3)
                a.node = std::stoi(parts[2]);
        } else if (parts[0] == "rate") {
            a.kind = coe::ActionKind::RateOverride;
            if (parts.size() != 3)
                p.fail("--schedule rate entries need a factor: "
                       "rate:AT:FACTOR");
            a.rateFactor = std::stod(parts[2]);
        } else {
            p.fail("--schedule entry '" + entry +
                   "' has unknown kind '" + parts[0] +
                   "' (expected drain, rejoin, or rate)");
        }
        actions.push_back(a);
    }
    return actions;
}

// ------------------------------------------ interconnect group

struct FabricFlagState
{
    bool setLinkGbps = false;
    bool setLinkLatency = false;
    bool setLinkBuffer = false;
};

/**
 * Interconnect flags (cluster subcommand). --topology switches the
 * cluster from instantaneous hub->node handoff onto the event-driven
 * link/credit fabric (coe/fabric.h); the --link-* knobs tune it and
 * require it. Off by default: without --topology the run is
 * byte-identical to a pre-fabric build.
 */
inline void
addFabricFlags(FlagParser &p, coe::FabricConfig &cfg,
               FabricFlagState &st)
{
    p.value("--topology", [&](const std::string &v) {
        cfg.topology = sim::topologyFromName(v);
        cfg.enabled = true;
    });
    p.value("--link-gbps", [&p, &cfg, &st](const std::string &v) {
        cfg.linkGbps = std::stod(v);
        if (cfg.linkGbps <= 0.0)
            p.fail("--link-gbps must be positive");
        st.setLinkGbps = true;
    });
    p.value("--link-latency-us", [&p, &cfg, &st](const std::string &v) {
        cfg.linkLatencyUs = std::stod(v);
        if (cfg.linkLatencyUs < 0.0)
            p.fail("--link-latency-us must be non-negative");
        st.setLinkLatency = true;
    });
    p.value("--link-buffer-flits", [&p, &cfg, &st](const std::string &v) {
        cfg.linkBufferFlits = std::stoi(v);
        if (cfg.linkBufferFlits < 1)
            p.fail("--link-buffer-flits must be at least 1");
        st.setLinkBuffer = true;
    });
}

inline void
validateFabricFlags(const FlagParser &p, const coe::FabricConfig &cfg,
                    const FabricFlagState &st,
                    coe::DispatchPolicy dispatch)
{
    if (!cfg.enabled &&
        (st.setLinkGbps || st.setLinkLatency || st.setLinkBuffer))
        p.fail("--link-* flags tune the interconnect; they require "
               "--topology");
    if (dispatch == coe::DispatchPolicy::TopologyAware && !cfg.enabled)
        p.fail("--dispatch topo-aware routes around fabric congestion; "
               "it requires --topology");
}

// ------------------------------------------------ chaos groups

struct FaultFlagState
{
    std::string faultsPath;
    bool setFaults = false;
    bool setRetry = false;       ///< any --retry-*
    bool setHedgeThreshold = false;
    bool setBrownoutPrio = false;
    bool setPolicyTick = false;
};

/**
 * Chaos-layer flags (cluster and sweep subcommands): a JSONL fault
 * schedule to replay plus the degraded-mode policy knobs
 * (coe/faults.h). All off by default — without --faults and with the
 * policies disabled the run is bit-identical to a chaos-free build.
 */
inline void
addFaultFlags(FlagParser &p, coe::FaultPolicyConfig &cfg,
              FaultFlagState &st)
{
    p.value("--faults", [&](const std::string &v) {
        st.faultsPath = v;
        st.setFaults = true;
    });
    p.value("--retry-max", [&](const std::string &v) {
        cfg.retryMax = std::stoi(v);
        st.setRetry = true;
    });
    p.value("--retry-backoff-ms", [&p, &cfg, &st](const std::string &v) {
        double ms = std::stod(v);
        if (ms <= 0.0)
            p.fail("--retry-backoff-ms must be positive");
        cfg.retryBackoffSeconds = ms / 1000.0;
        st.setRetry = true;
    });
    p.value("--retry-budget", [&](const std::string &v) {
        cfg.retryBudget = std::stoll(v);
        st.setRetry = true;
    });
    p.flag("--hedge", [&]() { cfg.hedge = true; });
    p.value("--hedge-threshold", [&](const std::string &v) {
        cfg.hedgeThreshold = std::stod(v);
        st.setHedgeThreshold = true;
    });
    p.value("--brownout-depth", [&](const std::string &v) {
        cfg.brownoutDepth = std::stod(v);
    });
    p.value("--brownout-prio", [&](const std::string &v) {
        cfg.brownoutPriorityMax = std::stoi(v);
        st.setBrownoutPrio = true;
    });
    p.value("--policy-tick-ms", [&p, &cfg, &st](const std::string &v) {
        double ms = std::stod(v);
        if (ms <= 0.0)
            p.fail("--policy-tick-ms must be positive");
        cfg.policyTickSeconds = ms / 1000.0;
        st.setPolicyTick = true;
    });
}

/**
 * Cross-check the chaos flags. Library-level validation
 * (validateFaultPolicy / validateFaultSchedule) still runs inside
 * ClusterSimulator; this layer catches the purely-CLI contradictions
 * with flag vocabulary.
 */
inline void
validateFaultFlags(const FlagParser &p,
                   const coe::FaultPolicyConfig &cfg,
                   const FaultFlagState &st,
                   const coe::ServingConfig &serving)
{
    if (st.setRetry && !st.setFaults)
        p.fail("--retry-* flags configure recovery from injected "
               "faults; they require --faults FILE");
    if (cfg.retryMax < 0)
        p.fail("--retry-max must be non-negative");
    if (cfg.retryBudget < -1)
        p.fail("--retry-budget must be -1 (unbounded) or non-negative");
    if (st.setHedgeThreshold && !cfg.hedge)
        p.fail("--hedge-threshold requires --hedge");
    if (cfg.hedge && cfg.hedgeThreshold <= 0.0)
        p.fail("--hedge-threshold must be positive");
    if (cfg.hedge && serving.workload.sloSeconds <= 0.0 &&
        serving.workload.traceIn.empty())
        p.fail("--hedge fires on SLO pressure; it needs --slo-ms or a "
               "replayed trace carrying deadlines (--trace-in)");
    if (st.setBrownoutPrio && cfg.brownoutDepth <= 0.0)
        p.fail("--brownout-prio requires --brownout-depth");
    if (cfg.brownoutDepth < 0.0)
        p.fail("--brownout-depth must be non-negative");
    if (cfg.brownoutPriorityMax < 0)
        p.fail("--brownout-prio must be non-negative");
    if (st.setPolicyTick && !cfg.hedge && cfg.brownoutDepth <= 0.0)
        p.fail("--policy-tick-ms paces hedging and brown-out; it "
               "requires --hedge or --brownout-depth");
}

/** Capacity-planning flags (cluster subcommand). */
struct PlanFlagState
{
    bool plan = false;
    int maxNodes = 0;       ///< 0: plan up to --nodes
    double p95Ms = 0.0;     ///< SLO target, required with --plan-capacity
    double maxShedPct = 0.0;
    bool setMaxNodes = false;
    bool setP95 = false;
    bool setShed = false;
};

inline void
addPlanFlags(FlagParser &p, PlanFlagState &st)
{
    p.flag("--plan-capacity", [&]() { st.plan = true; });
    p.value("--plan-max-nodes", [&](const std::string &v) {
        st.maxNodes = std::stoi(v);
        st.setMaxNodes = true;
    });
    p.value("--plan-p95-ms", [&](const std::string &v) {
        st.p95Ms = std::stod(v);
        st.setP95 = true;
    });
    p.value("--plan-max-shed-pct", [&](const std::string &v) {
        st.maxShedPct = std::stod(v);
        st.setShed = true;
    });
}

inline void
validatePlanFlags(const FlagParser &p, const PlanFlagState &st)
{
    if (!st.plan && (st.setMaxNodes || st.setP95 || st.setShed))
        p.fail("--plan-* flags require --plan-capacity");
    if (!st.plan)
        return;
    if (!st.setP95 || st.p95Ms <= 0.0)
        p.fail("--plan-capacity needs a positive --plan-p95-ms target");
    if (st.setMaxNodes && st.maxNodes < 1)
        p.fail("--plan-max-nodes must be at least 1");
    if (st.maxShedPct < 0.0 || st.maxShedPct > 100.0)
        p.fail("--plan-max-shed-pct must be in [0, 100]");
}

} // namespace sn40l::tools

#endif // SN40L_TOOLS_CLI_CONFIG_H
