/**
 * @file
 * Table-driven subcommand flag parsing for sn40l_run, extracted into a
 * header so the parser is unit-testable (tests/test_flag_parser.cc).
 *
 * Each subcommand registers its flag specs (shared groups plus its
 * own), then parse() walks argv: "--flag value" and "--flag=value"
 * both work, "--help"/"-h" prints the subcommand help, a flag given
 * twice is rejected, and an unrecognized flag fails with an error
 * naming the subcommand. Errors throw FlagUsageError instead of
 * exiting, so the tool's main() owns the exit path and tests can
 * assert on messages.
 */

#ifndef SN40L_TOOLS_FLAG_PARSER_H
#define SN40L_TOOLS_FLAG_PARSER_H

#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sn40l::tools {

/**
 * A command-line usage error: unknown flag, missing value, duplicate
 * flag, or a failed cross-flag validation. what() is the message to
 * print; subcommand() names the subcommand whose --help to suggest.
 */
class FlagUsageError : public std::runtime_error
{
  public:
    FlagUsageError(std::string subcommand, const std::string &msg)
        : std::runtime_error(msg), subcommand_(std::move(subcommand))
    {
    }

    const std::string &subcommand() const { return subcommand_; }

  private:
    std::string subcommand_;
};

/**
 * Flatten "--flag=value" arguments into "--flag value" so both
 * spellings parse through the same loop.
 */
inline std::vector<std::string>
splitEqualsArgs(const std::vector<std::string> &args)
{
    std::vector<std::string> out;
    out.reserve(args.size());
    for (const std::string &arg : args) {
        auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            out.push_back(arg.substr(0, eq));
            out.push_back(arg.substr(eq + 1));
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

inline std::vector<std::string>
splitEqualsArgs(int argc, char **argv, int first)
{
    std::vector<std::string> raw;
    for (int i = first; i < argc; ++i)
        raw.emplace_back(argv[i]);
    return splitEqualsArgs(raw);
}

class FlagParser
{
  public:
    FlagParser(const char *subcommand, void (*help)(std::ostream &))
        : subcommand_(subcommand), help_(help)
    {
    }

    /** Register a value-less flag ("--prefetch"). */
    void
    flag(const char *name, std::function<void()> apply)
    {
        addSpec(name, false,
                [apply = std::move(apply)](const std::string &) {
                    apply();
                });
    }

    /** Register a flag that consumes the next argument. */
    void
    value(const char *name, std::function<void(const std::string &)> apply)
    {
        addSpec(name, true, std::move(apply));
    }

    /** Shared failure path for parse and cross-flag validation. */
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw FlagUsageError(subcommand_, msg);
    }

    /**
     * Parse an argument list; "--flag=value" and "--flag value" both
     * work. @return true if --help was printed (caller should
     * return 0).
     */
    bool
    parse(const std::vector<std::string> &raw_args,
          std::ostream &help_out)
    {
        std::vector<std::string> args = splitEqualsArgs(raw_args);
        for (Spec &s : specs_)
            s.seen = false;
        for (std::size_t i = 0; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "--help" || arg == "-h") {
                help_(help_out);
                return true;
            }
            Spec *spec = nullptr;
            for (Spec &s : specs_) {
                if (arg == s.name) {
                    spec = &s;
                    break;
                }
            }
            if (!spec)
                fail("unknown " + std::string(subcommand_) + " flag '" +
                     arg + "'");
            if (spec->seen)
                fail("flag " + arg + " given more than once");
            spec->seen = true;
            if (spec->takesValue) {
                if (i + 1 >= args.size())
                    fail("flag " + arg + " expects a value");
                spec->apply(args[++i]);
            } else {
                spec->apply(std::string());
            }
        }
        return false;
    }

    /** Parse raw argv starting at index 2 (after the subcommand). */
    bool
    parse(int argc, char **argv, std::ostream &help_out)
    {
        std::vector<std::string> raw;
        for (int i = 2; i < argc; ++i)
            raw.emplace_back(argv[i]);
        return parse(raw, help_out);
    }

    const char *subcommand() const { return subcommand_; }

  private:
    struct Spec
    {
        std::string name;
        bool takesValue;
        std::function<void(const std::string &)> apply;
        bool seen = false;
    };

    void
    addSpec(const char *name, bool takes_value,
            std::function<void(const std::string &)> apply)
    {
        for (const Spec &s : specs_)
            if (s.name == name)
                throw std::logic_error(
                    std::string("FlagParser: flag '") + name +
                    "' registered twice on subcommand " + subcommand_);
        specs_.push_back({name, takes_value, std::move(apply), false});
    }

    const char *subcommand_;
    void (*help_)(std::ostream &);
    std::vector<Spec> specs_;
};

/** Parse a comma-separated list through @p parse; empty elements fail. */
template <typename T>
std::vector<T>
parseList(const FlagParser &p, const std::string &csv,
          T (*parse)(const std::string &))
{
    std::vector<T> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            p.fail("empty element in list '" + csv + "'");
        out.push_back(parse(item));
    }
    if (out.empty())
        p.fail("empty list argument");
    return out;
}

} // namespace sn40l::tools

#endif // SN40L_TOOLS_FLAG_PARSER_H
