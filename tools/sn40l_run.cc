/**
 * @file
 * sn40l_run: command-line driver for the simulator. Compiles and
 * executes one workload and prints a report; optionally writes a
 * Chrome trace-event timeline.
 *
 *   sn40l_run --model llama2-7b --phase decode --seq 2048 --tp 8 \
 *             [--batch 1] [--config fused-ho|fused-so|unfused] \
 *             [--sockets 8] [--trace out.json]
 *
 * The `serve` subcommand drives the event-driven CoE request-stream
 * scheduler and reports tail latency and throughput; `sweep` shards a
 * Cartesian grid of serve points over a thread pool; `cluster` runs a
 * multi-node serving cluster with pluggable expert placement and
 * request dispatch, scripted mid-run actions (drain/rejoin/rate
 * overrides), an autoscaling control plane (--controller), and a
 * capacity planner (--plan-capacity).
 *
 * Every subcommand documents its flags via `--help`. Flags shared
 * between subcommands (workload shape, memory system, arrivals,
 * scenarios, core serving scalars, control plane) are declared once
 * in tools/cli_config.h and registered into each subcommand's
 * FlagParser, so no subcommand copies another's flag handling and
 * unknown-flag errors always name the subcommand they came from.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "coe/cluster.h"
#include "coe/metrics_io.h"
#include "coe/serving.h"
#include "coe/sweep.h"
#include "coe/workload.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/trace.h"
#include "util/table.h"

#include "cli_config.h"
#include "flag_parser.h"

using namespace sn40l;
using namespace sn40l::tools;

namespace {

models::LlmConfig
modelByName(const std::string &name)
{
    using models::LlmConfig;
    static const std::map<std::string, LlmConfig (*)()> zoo = {
        {"llama2-7b", &LlmConfig::llama2_7b},
        {"llama2-13b", &LlmConfig::llama2_13b},
        {"sparsegpt-13b", &LlmConfig::sparseGpt13b},
        {"llama2-70b", &LlmConfig::llama2_70b},
        {"llama3.1-8b", &LlmConfig::llama31_8b},
        {"llama3.1-70b", &LlmConfig::llama31_70b},
        {"llama3.1-405b", &LlmConfig::llama31_405b},
        {"mistral-7b", &LlmConfig::mistral7b},
        {"falcon-40b", &LlmConfig::falcon40b},
        {"bloom-176b", &LlmConfig::bloom176b},
        {"llava1.5-7b", &LlmConfig::llava15_7b},
    };
    auto it = zoo.find(name);
    if (it == zoo.end()) {
        std::cerr << "unknown model '" << name << "'. Available:\n";
        for (const auto &kv : zoo)
            std::cerr << "  " << kv.first << "\n";
        std::exit(1);
    }
    return it->second();
}

// ------------------------------------------------------- help text

void
serveHelp(std::ostream &os)
{
    os << "usage: sn40l_run serve [flags]\n"
       << "\n"
       << "Event-driven CoE request-stream serving: requests arrive, are\n"
       << "continuously batched against the live LRU expert cache, and\n"
       << "every expert switch streams DDR->HBM through the platform's\n"
       << "DMA engines, contending with decode traffic.\n"
       << "\n"
       << "Workload:\n"
       << "  --platform P          sn40l | dgx-a100 | dgx-h100 "
       << "(default sn40l)\n"
       << "  --experts N           experts in the zoo (default 150)\n"
       << "  --batch N             max prompts per batch (default 8)\n"
       << "  --tokens N            output tokens per prompt (default 20)\n"
       << "  --requests N          requests to stream (default 512)\n"
       << "  --routing D           uniform | zipf | round-robin\n"
       << "  --zipf-s S            Zipf skew (requires --routing zipf)\n"
       << "  --seed N              RNG seed (default 1)\n"
       << "\n"
       << "Arrivals:\n"
       << "  --arrival-rate R      open-loop Poisson rate, req/s "
       << "(default 8)\n"
       << "  --closed-loop         fixed client pool instead of Poisson\n"
       << "  --clients N           pool size (requires --closed-loop)\n"
       << "  --think SEC           client think time (requires "
       << "--closed-loop)\n"
       << "\n"
       << "Scheduler:\n"
       << "  --scheduler S         fifo | affinity | both (default both)\n"
       << "\n"
       << "Workload scenarios (see README 'Workload scenarios'):\n"
       << "  --workload W          poisson | closed-loop | mix "
       << "(default:\n"
       << "                        poisson, or closed-loop with\n"
       << "                        --closed-loop)\n"
       << "  --tenants N           tenants in the mix (implies\n"
       << "                        --workload mix; default 4)\n"
       << "  --slo-ms MS           per-request deadline; overloaded\n"
       << "                        arrivals are shed at admission\n"
       << "  --session-prob P      P(follow-up turn) after each "
       << "completed\n"
       << "                        turn (conversational sessions)\n"
       << "  --session-think SEC   mean think time between turns\n"
       << "  --session-turns N     max turns per session (default 8)\n"
       << "  --burst-factor F      arrival-rate multiplier inside "
       << "burst\n"
       << "                        windows (flash crowds)\n"
       << "  --burst-every SEC     burst window period\n"
       << "  --burst-seconds SEC   burst window length\n"
       << "  --trace-out FILE      record the request stream as JSONL\n"
       << "  --trace-in FILE       replay a recorded stream "
       << "bit-exactly\n"
       << "\n"
       << "Memory system:\n"
       << "  --prefetch            speculative prefetch: queued requests'\n"
       << "                        experts stream at low DMA priority\n"
       << "  --prefetch-depth N    max outstanding prefetches (requires\n"
       << "                        --prefetch; default 4)\n"
       << "  --prefetch-window N   queued requests the prefetcher\n"
       << "                        inspects per decision (0 = whole\n"
       << "                        queue, the default; bound it for\n"
       << "                        overloaded runs)\n"
       << "  --dma-engines N       DMA engines streaming experts "
       << "(default 2)\n"
       << "  --expert-region-gb G  HBM expert-region size in GB "
       << "(default:\n"
       << "                        platform HBM minus router/KV reserve)\n"
       << "\n"
       << "Speculative decoding (see docs/CLI.md):\n"
       << "  --spec-decode         draft/verify serving: an always-\n"
       << "                        resident draft model proposes gamma\n"
       << "                        tokens per step; each request samples\n"
       << "                        its own acceptance stream\n"
       << "  --spec-gamma N        draft tokens per verification step\n"
       << "                        (requires --spec-decode; default 4)\n"
       << "  --spec-accept P       per-token acceptance probability in\n"
       << "                        [0, 1] (default 0.8)\n"
       << "  --spec-draft-ratio F  draft model size/cost as a fraction\n"
       << "                        of the target in (0, 1) (default "
       << "0.05)\n"
       << "\n"
       << "PEFT expert zoo (see docs/CLI.md):\n"
       << "  --zoo-adapters N      serve N LoRA adapters sharing pinned\n"
       << "                        base weights instead of full-weight\n"
       << "                        experts (replaces --experts)\n"
       << "  --zoo-rank R          LoRA rank; adapter bytes scale with\n"
       << "                        it (requires --zoo-adapters; "
       << "default 16)\n"
       << "  --zoo-churn SEC       rotate adapter popularity every SEC\n"
       << "                        seconds (trending adapters; "
       << "default off)\n";
}

void
sweepHelp(std::ostream &os)
{
    os << "usage: sn40l_run sweep [flags]\n"
       << "\n"
       << "Cartesian sweep of event-driven serving points (nodes x\n"
       << "placements x experts x arrival rates x batch sizes x\n"
       << "schedulers x seeds), sharded across a thread pool. Every\n"
       << "point is an independent deterministic simulation with its\n"
       << "own event queue, so `-j N` produces bit-identical per-point\n"
       << "results to `-j 1`.\n"
       << "\n"
       << "Axes (comma-separated lists):\n"
       << "  --experts LIST        e.g. 50,100,150 (default 150)\n"
       << "  --arrival-rate LIST   req/s per node, e.g. 8,16,24 "
       << "(default 8)\n"
       << "  --batch LIST          max prompts per batch (default 8)\n"
       << "  --scheduler S         fifo | affinity | both (default both)\n"
       << "  --seeds LIST          RNG seeds, e.g. 1,2,3 (default 1)\n"
       << "  --nodes LIST          cluster sizes, e.g. 1,4,8 (default:\n"
       << "                        single-node serving, no cluster)\n"
       << "  --placement LIST      replication | replicate-hot | "
       << "partition\n"
       << "                        (requires --nodes)\n"
       << "  --dispatch D          round-robin | least-outstanding |\n"
       << "                        expert-affinity (requires --nodes)\n"
       << "\n"
       << "Per-point workload (same meaning as `serve`):\n"
       << "  --platform P          sn40l | dgx-a100 | dgx-h100\n"
       << "  --requests N          requests per point (default 512)\n"
       << "  --tokens N            output tokens per prompt\n"
       << "  --routing D           uniform | zipf | round-robin\n"
       << "  --zipf-s S            Zipf skew (requires --routing zipf)\n"
       << "  --prefetch            speculative prefetch\n"
       << "  --prefetch-depth N    max outstanding prefetches\n"
       << "  --prefetch-window N   prefetcher inspection window\n"
       << "                        (0 = whole queue)\n"
       << "  --dma-engines N       DMA engines per point\n"
       << "  --expert-region-gb G  HBM expert-region size in GB\n"
       << "\n"
       << "Speculative decoding / PEFT zoo (same meaning as `serve`;\n"
       << "applied to every point):\n"
       << "  --spec-decode, --spec-gamma, --spec-accept,\n"
       << "  --spec-draft-ratio, --zoo-adapters (conflicts with the\n"
       << "  --experts axis), --zoo-rank, --zoo-churn\n"
       << "\n"
       << "Workload scenarios (same meaning as `serve`):\n"
       << "  --workload, --tenants, --slo-ms, --session-prob,\n"
       << "  --session-think, --session-turns, --burst-factor,\n"
       << "  --burst-every, --burst-seconds\n"
       << "  --trace-in FILE       replay ONE recorded stream across\n"
       << "                        every point, so configs compete on\n"
       << "                        identical traffic (--trace-out is\n"
       << "                        not allowed here)\n"
       << "\n"
       << "Faults & degraded mode (cluster points only, same meaning\n"
       << "as `cluster`): --faults, --retry-max, --retry-backoff-ms,\n"
       << "  --retry-budget, --hedge, --hedge-threshold,\n"
       << "  --brownout-depth, --brownout-prio, --policy-tick-ms\n"
       << "  The schedule is parsed once and replayed identically at\n"
       << "  every point (requires --nodes)\n"
       << "\n"
       << "Execution:\n"
       << "  -j N / --jobs N       worker threads (default: hardware\n"
       << "                        concurrency)\n"
       << "  --json FILE           write per-point metrics as JSON\n";
}

void
clusterHelp(std::ostream &os)
{
    os << "usage: sn40l_run cluster [flags]\n"
       << "\n"
       << "Multi-node CoE serving cluster: N per-node serving stacks\n"
       << "(each its own LRU expert cache and DMA memory system) on one\n"
       << "event queue, fronted by a cluster router with pluggable\n"
       << "expert placement and request dispatch. Supports scripted\n"
       << "mid-run actions (drain/rejoin/rate overrides), a diurnal\n"
       << "arrival ramp, an autoscaling control plane, and capacity\n"
       << "planning.\n"
       << "\n"
       << "Cluster:\n"
       << "  --nodes N             nodes in the cluster (default 4)\n"
       << "  --placement P         replication | replicate-hot | "
       << "partition\n"
       << "                        (default replicate-hot)\n"
       << "  --hot-experts N       experts replicated on every node\n"
       << "                        (requires --placement replicate-hot;\n"
       << "                        default experts/10)\n"
       << "  --dispatch D          round-robin | least-outstanding |\n"
       << "                        expert-affinity | topo-aware\n"
       << "                        (default least-outstanding;\n"
       << "                        topo-aware requires --topology)\n"
       << "\n"
       << "Interconnect (event-driven link/credit fabric, see\n"
       << "docs/ARCHITECTURE.md):\n"
       << "  --topology T          star | mesh | torus | fat-tree:\n"
       << "                        route dispatch, migration, and drain\n"
       << "                        traffic through a flit-level fabric\n"
       << "                        instead of instantaneous handoff\n"
       << "  --link-gbps G         per-link bandwidth in gigabits/s\n"
       << "                        (requires --topology; default 200)\n"
       << "  --link-latency-us U   per-hop link latency (default 2)\n"
       << "  --link-buffer-flits N per-link input buffer depth, i.e.\n"
       << "                        the credit count (default 64)\n"
       << "\n"
       << "Scenarios:\n"
       << "  --drain-at SEC        drain a node mid-run: its queue\n"
       << "                        re-dispatches, nothing is lost\n"
       << "  --drain-node N        which node drains (requires\n"
       << "                        --drain-at; default 0)\n"
       << "  --rejoin-at SEC       drained node rejoins cold (requires\n"
       << "                        --drain-at)\n"
       << "  --schedule LIST       scripted actions KIND:AT[:ARG] with\n"
       << "                        KIND drain|rejoin|rate, e.g.\n"
       << "                        drain:3:1,rejoin:8:1,rate:12:0.5\n"
       << "                        (generalizes the --drain-* sugar)\n"
       << "  --diurnal-amplitude A sinusoidal ramp on the Poisson rate,\n"
       << "                        in [0,1) (open loop only)\n"
       << "  --diurnal-period SEC  ramp period (requires\n"
       << "                        --diurnal-amplitude; default 86400)\n"
       << "  --node-dma-engines L  per-node DMA engine counts, e.g.\n"
       << "                        2,4,2,4 (length = --nodes;\n"
       << "                        heterogeneous cluster)\n"
       << "  --node-region-gb L    per-node expert-region GB list\n"
       << "\n"
       << "Control plane (autoscaling, see README):\n"
       << "  --controller P        static | reactive | target-util\n"
       << "                        (default static: no control loop)\n"
       << "  --controller-tick SEC control-loop period (default 0.5)\n"
       << "  --controller-min N    live-node floor (default 1)\n"
       << "  --controller-max N    live-node ceiling (default --nodes)\n"
       << "  --controller-up-depth D    reactive: scale up above this\n"
       << "                        mean queue depth per live node\n"
       << "                        (default 4)\n"
       << "  --controller-down-depth D  reactive: scale down below\n"
       << "                        this depth (default 0.5)\n"
       << "  --controller-target-util U target-util: hold arrival rate\n"
       << "                        near U x capacity (default 0.7)\n"
       << "  --controller-cooldown N    ticks a scale-down waits after\n"
       << "                        any scale action (default 4)\n"
       << "  --controller-hot K    re-replicate the top-K experts by\n"
       << "                        windowed hits onto live nodes\n"
       << "  --controller-log FILE JSONL decision log, one object per\n"
       << "                        tick\n"
       << "\n"
       << "Capacity planning:\n"
       << "  --plan-capacity       report the smallest node count\n"
       << "                        meeting the targets (needs a pinned\n"
       << "                        demand: --arrival-rate or --trace-in)\n"
       << "  --plan-max-nodes N    search ceiling (default --nodes)\n"
       << "  --plan-p95-ms MS      p95 latency target (required)\n"
       << "  --plan-max-shed-pct P max shed percentage (default 0)\n"
       << "\n"
       << "Faults & degraded mode (chaos layer, see README):\n"
       << "  --faults FILE         replay a JSONL fault schedule: node\n"
       << "                        crashes (queued work re-dispatched or\n"
       << "                        lost), DMA stalls, stragglers, flaky\n"
       << "                        dispatch windows, degraded fabric\n"
       << "                        links (link-degrade needs --topology).\n"
       << "                        Deterministic for any -j N\n"
       << "  --retry-max N         re-dispatch a displaced request up to\n"
       << "                        N times (requires --faults; default 0:\n"
       << "                        displaced work is lost)\n"
       << "  --retry-backoff-ms MS exponential backoff base, doubling\n"
       << "                        per attempt (default 50)\n"
       << "  --retry-budget N      cluster-wide retry cap, -1 unbounded\n"
       << "                        (default -1)\n"
       << "  --hedge               duplicate a dispatch to a second node\n"
       << "                        when the queueing estimate threatens\n"
       << "                        the deadline; loser is cancelled\n"
       << "                        (needs --slo-ms or --trace-in)\n"
       << "  --hedge-threshold F   hedge when estimated delay exceeds\n"
       << "                        F x deadline (requires --hedge;\n"
       << "                        default 1.0)\n"
       << "  --brownout-depth D    shed priority<=P arrivals while mean\n"
       << "                        live queue depth exceeds D (exits at\n"
       << "                        D/2; default off)\n"
       << "  --brownout-prio P     max priority tier shed in brown-out\n"
       << "                        (requires --brownout-depth; default 0)\n"
       << "  --policy-tick-ms MS   hedge/brown-out evaluation period\n"
       << "                        (default 50)\n"
       << "\n"
       << "Execution:\n"
       << "  -j N / --threads N    worker threads for THIS run\n"
       << "                        (default 1). 1 is the bit-exact\n"
       << "                        single-queue path; N > 1 shards the\n"
       << "                        event queue per node (deterministic\n"
       << "                        for any N, clamped to --nodes).\n"
       << "                        Incompatible with --closed-loop,\n"
       << "                        generated --session-* workloads, and\n"
       << "                        --dispatch least-outstanding\n"
       << "\n"
       << "Output:\n"
       << "  --json FILE           write the cluster result as JSON\n"
       << "\n"
       << "Workload (same meaning as `serve`):\n"
       << "  --platform, --experts, --batch, --tokens, --requests,\n"
       << "  --routing, --zipf-s, --seed, --scheduler (fifo | affinity),\n"
       << "  --prefetch, --prefetch-depth, --prefetch-window,\n"
       << "  --dma-engines, --expert-region-gb\n"
       << "\n"
       << "Speculative decoding / PEFT zoo (same meaning as `serve`):\n"
       << "  --spec-decode, --spec-gamma, --spec-accept,\n"
       << "  --spec-draft-ratio, --zoo-adapters, --zoo-rank, "
       << "--zoo-churn\n"
       << "\n"
       << "Workload scenarios (same meaning as `serve`):\n"
       << "  --workload, --tenants, --slo-ms, --session-prob,\n"
       << "  --session-think, --session-turns, --burst-factor,\n"
       << "  --burst-every, --burst-seconds, --trace-out, --trace-in\n"
       << "\n"
       << "Arrivals (cluster-wide):\n"
       << "  --arrival-rate R      TOTAL open-loop rate across the\n"
       << "                        cluster, req/s (default 8 x nodes)\n"
       << "  --closed-loop / --clients / --think   as in `serve`\n";
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: sn40l_run --model NAME --phase "
              << "prefill|decode|train [--seq N] [--batch N]\n"
              << "       [--tp N] [--sockets N] [--config "
              << "fused-ho|fused-so|unfused] [--trace FILE]\n"
              << "   or: sn40l_run serve [flags]    "
              << "(see `sn40l_run serve --help`)\n"
              << "   or: sn40l_run sweep [flags]    "
              << "(see `sn40l_run sweep --help`)\n"
              << "   or: sn40l_run cluster [flags]  "
              << "(see `sn40l_run cluster --help`)\n";
    std::exit(1);
}

// ---------------------------------------------------------- serve

int
runServe(int argc, char **argv)
{
    coe::ServingConfig cfg;
    cfg.mode = coe::ServingMode::EventDriven;
    cfg.batch = 8;
    std::string scheduler_name = "both";

    FlagParser parser("serve", serveHelp);
    WorkloadFlagState wst;
    ArrivalFlagState ast;
    ScenarioFlagState sst;
    SpecZooFlagState szst;
    bool set_experts = false;
    addWorkloadFlags(parser, cfg, wst);
    addArrivalFlags(parser, cfg, ast);
    addScenarioFlags(parser, cfg, sst);
    addCoreServingFlags(parser, cfg, scheduler_name, &set_experts);
    addSpecZooFlags(parser, cfg, szst);

    if (parser.parse(argc, argv, std::cout))
        return 0;
    validateWorkloadFlags(parser, cfg, wst);
    validateArrivalFlags(parser, cfg, ast);
    validateScenarioFlags(parser, cfg, sst, ast);
    validateSpecZooFlags(parser, cfg, szst, set_experts);

    std::vector<coe::SchedulerPolicy> policies;
    if (scheduler_name == "both") {
        // Sessions and SLO shedding feed completions back into the
        // arrival stream, so the two schedulers emit different
        // traffic — recording "both" would silently keep only the
        // last run's trace.
        if (!cfg.workload.traceOut.empty())
            parser.fail("--trace-out records one run; pick a single "
                        "--scheduler (fifo or affinity)");
        policies = {coe::SchedulerPolicy::Fifo,
                    coe::SchedulerPolicy::ExpertAffinity};
    } else {
        policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::cout << "CoE request stream on " << coe::platformName(cfg.platform)
              << ": " << cfg.numExperts << " experts, "
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? "open-loop Poisson "
                      : "closed-loop ")
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? util::formatDouble(cfg.arrivalRatePerSec, 1) +
                            " req/s"
                      : std::to_string(cfg.clients) + " clients")
              << ", " << cfg.streamRequests << " requests, max batch "
              << cfg.batch << ", "
              << coe::routingDistributionName(cfg.routing)
              << " routing\n\n";

    util::Table table({"Scheduler", "p50", "p95", "p99", "Throughput",
                       "Tokens/s", "Miss rate", "Miss-stall p95",
                       "Queue depth", "Batch occupancy"});
    std::vector<std::string> prefetch_lines;
    std::vector<std::string> shed_lines;
    std::vector<std::string> spec_lines;
    for (coe::SchedulerPolicy policy : policies) {
        cfg.scheduler = policy;
        coe::ServingSimulator sim(cfg);
        coe::ServingResult r = sim.run();
        if (r.oom) {
            table.addRow({coe::schedulerPolicyName(policy), "-", "-", "-",
                          "OUT OF MEMORY"});
            continue;
        }
        const coe::StreamMetrics &m = r.stream;
        if (m.shed > 0 || cfg.workload.sloSeconds > 0.0) {
            shed_lines.push_back(
                std::string(coe::schedulerPolicyName(policy)) + ": " +
                std::to_string(m.shed) + " shed (" +
                util::formatDouble(m.shedRate * 100, 1) +
                "% of arrivals)");
        }
        if (cfg.predictivePrefetch) {
            prefetch_lines.push_back(
                std::string(coe::schedulerPolicyName(policy)) + ": " +
                std::to_string(m.prefetchesIssued) + " issued, " +
                std::to_string(m.prefetchHits) + " hit by a batch, " +
                std::to_string(m.prefetchesCancelled) +
                " cancelled under eviction pressure");
        }
        if (cfg.specDecode.enabled) {
            spec_lines.push_back(
                std::string(coe::schedulerPolicyName(policy)) + ": " +
                std::to_string(m.specSteps) + " draft/verify steps, " +
                util::formatDouble(m.specTokensPerStep, 2) +
                " accepted tokens/step (gamma " +
                std::to_string(cfg.specDecode.gamma) + ", accept " +
                util::formatDouble(cfg.specDecode.acceptRate, 2) + ")");
        }
        table.addRow({coe::schedulerPolicyName(policy),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(m.throughputTokensPerSec, 1),
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      util::formatSeconds(m.p95SwitchStallSeconds),
                      util::formatDouble(m.meanQueueDepth, 1) + " avg / " +
                          util::formatDouble(m.maxQueueDepth, 0) + " max",
                      util::formatDouble(m.meanBatchOccupancy, 2)});
    }
    table.print(std::cout);
    if (!prefetch_lines.empty()) {
        std::cout << "\nSpeculative prefetch:\n";
        for (const std::string &line : prefetch_lines)
            std::cout << "  " << line << "\n";
    }
    if (!shed_lines.empty()) {
        std::cout << "\nSLO admission control:\n";
        for (const std::string &line : shed_lines)
            std::cout << "  " << line << "\n";
    }
    if (!spec_lines.empty()) {
        std::cout << "\nSpeculative decoding:\n";
        for (const std::string &line : spec_lines)
            std::cout << "  " << line << "\n";
    }
    if (!cfg.workload.traceOut.empty())
        std::cout << "\nwrote request trace to " << cfg.workload.traceOut
                  << "\n";
    return 0;
}

// ---------------------------------------------------------- sweep

int
runSweepCmd(int argc, char **argv)
{
    coe::SweepGrid grid;
    grid.base.mode = coe::ServingMode::EventDriven;
    grid.base.batch = 8;
    grid.base.arrivalRatePerSec = 8.0;
    std::string scheduler_name = "both";
    std::string json_path;
    int jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0)
        jobs = 1;

    FlagParser parser("sweep", sweepHelp);
    WorkloadFlagState wst;
    ScenarioFlagState sst;
    FaultFlagState fst;
    SpecZooFlagState szst;
    addWorkloadFlags(parser, grid.base, wst);
    addScenarioFlags(parser, grid.base, sst);
    addFaultFlags(parser, grid.faultPolicy, fst);
    addSpecZooFlags(parser, grid.base, szst);
    bool set_placement = false, set_dispatch = false;
    parser.value("--experts", [&](const std::string &v) {
        grid.expertCounts = parseList<int>(
            parser, v, +[](const std::string &s) { return std::stoi(s); });
    });
    parser.value("--arrival-rate", [&](const std::string &v) {
        grid.arrivalRates = parseList<double>(
            parser, v, +[](const std::string &s) { return std::stod(s); });
    });
    parser.value("--batch", [&](const std::string &v) {
        grid.batchSizes = parseList<int>(
            parser, v, +[](const std::string &s) { return std::stoi(s); });
    });
    parser.value("--seeds", [&](const std::string &v) {
        grid.seeds = parseList<std::uint64_t>(
            parser, v, +[](const std::string &s) {
                return static_cast<std::uint64_t>(std::stoull(s));
            });
    });
    parser.value("--nodes", [&](const std::string &v) {
        grid.nodeCounts = parseList<int>(
            parser, v, +[](const std::string &s) { return std::stoi(s); });
    });
    parser.value("--placement", [&](const std::string &v) {
        grid.placements = parseList<coe::PlacementPolicy>(
            parser, v, &coe::placementPolicyFromName);
        set_placement = true;
    });
    parser.value("--dispatch", [&](const std::string &v) {
        grid.dispatch = coe::dispatchPolicyFromName(v);
        set_dispatch = true;
    });
    parser.value("--scheduler",
                 [&](const std::string &v) { scheduler_name = v; });
    parser.value("-j", [&](const std::string &v) { jobs = std::stoi(v); });
    parser.value("--jobs",
                 [&](const std::string &v) { jobs = std::stoi(v); });
    parser.value("--json", [&](const std::string &v) { json_path = v; });

    if (parser.parse(argc, argv, std::cout))
        return 0;
    validateWorkloadFlags(parser, grid.base, wst);
    // sweep has no --closed-loop/--arrival-rate scalar flags (the
    // rate is a grid axis), so the shared arrival-state checks get a
    // default state; the axis-specific conflicts are checked below.
    validateScenarioFlags(parser, grid.base, sst, ArrivalFlagState{});
    // sweep's --experts is a grid axis: a non-empty axis list plays
    // the scalar flag's role in the --zoo-adapters conflict check.
    validateSpecZooFlags(parser, grid.base, szst,
                         !grid.expertCounts.empty());
    validateFaultFlags(parser, grid.faultPolicy, fst, grid.base);
    if ((fst.setFaults || grid.faultPolicy.anyEnabled()) &&
        grid.nodeCounts.empty())
        parser.fail("--faults and the degraded-mode flags act on the "
                    "cluster dispatch layer; they require --nodes");
    if (fst.setFaults) {
        // Parse once; every grid point (and worker thread) replays the
        // same immutable schedule, mirroring the --trace-in pattern.
        grid.faults =
            std::make_shared<const std::vector<coe::FaultEvent>>(
                coe::loadFaultSchedule(fst.faultsPath));
    }
    if (!grid.base.workload.traceOut.empty())
        parser.fail("--trace-out is ambiguous across sweep points; "
                    "record a trace with `serve` or `cluster` and "
                    "replay it here with --trace-in");
    if (!grid.base.workload.traceIn.empty() &&
        !grid.arrivalRates.empty())
        parser.fail("--trace-in fixes the arrival stream; an "
                    "--arrival-rate axis does not apply");
    if ((set_placement || set_dispatch) && grid.nodeCounts.empty())
        parser.fail("--placement/--dispatch require --nodes");
    if (jobs <= 0)
        parser.fail("--jobs must be at least 1");
    if (!grid.base.workload.traceIn.empty()) {
        // Parse the trace once here; every grid point (and worker
        // thread) shares the immutable entries instead of re-reading
        // the file per point.
        grid.base.workload.traceEntries =
            std::make_shared<const std::vector<coe::TraceEntry>>(
                coe::loadTrace(grid.base.workload.traceIn));
    }

    if (scheduler_name == "both") {
        grid.policies = {coe::SchedulerPolicy::Fifo,
                         coe::SchedulerPolicy::ExpertAffinity};
    } else {
        grid.policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::vector<coe::SweepPoint> points = grid.points();
    std::cout << "CoE sweep on " << coe::platformName(grid.base.platform)
              << ": " << points.size() << " points x "
              << grid.base.streamRequests << " requests, " << jobs
              << " worker thread" << (jobs == 1 ? "" : "s") << "\n\n";

    auto start = std::chrono::steady_clock::now();
    std::vector<coe::SweepPointResult> results =
        coe::runSweep(points, jobs);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    bool clustered = !grid.nodeCounts.empty();
    std::vector<std::string> header = {"Experts", "Rate", "Batch",
                                       "Sched", "Seed"};
    if (clustered) {
        header.insert(header.begin(), "Placement");
        header.insert(header.begin(), "Nodes");
    }
    for (const char *col : {"p50", "p95", "p99", "Throughput",
                            "Miss rate", "Events"})
        header.push_back(col);
    if (clustered)
        header.push_back("Imbalance");
    util::Table table(header);

    std::uint64_t total_events = 0;
    for (const coe::SweepPointResult &r : results) {
        const coe::ServingConfig &cfg = r.point.cfg;
        std::vector<std::string> row;
        if (clustered) {
            row.push_back(std::to_string(r.point.nodes));
            row.push_back(coe::placementPolicyName(r.point.placement));
        }
        row.push_back(std::to_string(cfg.numExperts));
        // The per-node rate the grid asked for, not the node-scaled
        // total — points stay comparable across node counts.
        row.push_back(util::formatDouble(r.point.ratePerNode, 1));
        row.push_back(std::to_string(cfg.batch));
        row.push_back(coe::schedulerPolicyName(cfg.scheduler));
        row.push_back(std::to_string(cfg.seed));
        if (r.result.oom) {
            row.insert(row.end(), {"-", "-", "-", "OUT OF MEMORY", "-",
                                   "-"});
            if (clustered)
                row.push_back("-");
            table.addRow(row);
            continue;
        }
        const coe::StreamMetrics &m = r.result.stream;
        total_events += r.eventsExecuted;
        row.push_back(util::formatSeconds(m.p50LatencySeconds));
        row.push_back(util::formatSeconds(m.p95LatencySeconds));
        row.push_back(util::formatSeconds(m.p99LatencySeconds));
        row.push_back(util::formatDouble(m.throughputRequestsPerSec, 2) +
                      " req/s");
        row.push_back(util::formatDouble(r.result.missRate * 100, 1) +
                      "%");
        row.push_back(std::to_string(r.eventsExecuted));
        if (clustered)
            row.push_back(util::formatDouble(r.loadImbalance, 2) + "x");
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n" << points.size() << " points, " << total_events
              << " simulator events in " << util::formatDouble(wall, 2)
              << " s ("
              << util::formatDouble(
                     wall > 0.0 ? static_cast<double>(total_events) / wall
                                : 0.0,
                     0)
              << " events/s across " << jobs << " threads)\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            parser.fail("cannot write " + json_path);
        coe::writeSweepJson(out, results, jobs, wall);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}

// -------------------------------------------------------- cluster

/**
 * Capacity planner: re-run the demand against growing static
 * clusters and report the smallest node count meeting the p95 and
 * shed targets. Exits non-zero when nothing up to the ceiling does.
 */
int
runPlanCapacity(const FlagParser &parser, coe::ClusterConfig cfg,
                const PlanFlagState &plan, bool set_rate)
{
    if (cfg.node.arrival == coe::ArrivalProcess::ClosedLoop)
        parser.fail("--plan-capacity sizes for offered load; "
                    "closed-loop demand self-paces, drop "
                    "--closed-loop");
    if (!set_rate && cfg.node.workload.traceIn.empty())
        parser.fail("--plan-capacity needs the demand pinned: give an "
                    "explicit --arrival-rate or a --trace-in trace "
                    "(the default rate scales with the node count)");
    if (!cfg.overrides.empty())
        parser.fail("--plan-capacity varies the node count; per-node "
                    "override lists do not apply");
    if (cfg.drainAtSeconds > 0.0 || !cfg.actions.empty())
        parser.fail("--plan-capacity runs clean static clusters; drop "
                    "--drain-at/--schedule");
    if (cfg.controller.policy != coe::ControllerPolicy::Static)
        parser.fail("--plan-capacity provisions statically; drop "
                    "--controller");
    if (!cfg.node.workload.traceOut.empty())
        parser.fail("--plan-capacity runs the demand several times; "
                    "--trace-out is ambiguous");

    int max_nodes = plan.setMaxNodes ? plan.maxNodes : cfg.nodes;
    if (!cfg.node.workload.traceIn.empty()) {
        // Parse once; every candidate node count replays the same
        // immutable entries.
        cfg.node.workload.traceEntries =
            std::make_shared<const std::vector<coe::TraceEntry>>(
                coe::loadTrace(cfg.node.workload.traceIn));
    }

    std::cout << "Capacity plan: smallest cluster meeting p95 <= "
              << util::formatDouble(plan.p95Ms, 1) << " ms, shed <= "
              << util::formatDouble(plan.maxShedPct, 1) << "% over "
              << (cfg.node.workload.replay()
                      ? "the replayed trace"
                      : util::formatDouble(cfg.node.arrivalRatePerSec,
                                           1) +
                            " req/s")
              << " (" << cfg.node.streamRequests << " requests, up to "
              << max_nodes << " nodes)\n\n";

    util::Table table(
        {"Nodes", "p95", "Shed", "Node-hours", "Verdict"});
    int chosen = -1;
    coe::ClusterResult chosen_result;
    for (int n = 1; n <= max_nodes; ++n) {
        coe::ClusterConfig pc = cfg;
        pc.nodes = n;
        coe::ClusterSimulator sim(pc);
        coe::ClusterResult r = sim.run();
        if (r.oom) {
            table.addRow({std::to_string(n), "-", "-", "-",
                          "OUT OF MEMORY"});
            continue;
        }
        double p95_ms = r.stream.p95LatencySeconds * 1000.0;
        double shed_pct = r.stream.shedRate * 100.0;
        bool met = p95_ms <= plan.p95Ms && shed_pct <= plan.maxShedPct;
        table.addRow({std::to_string(n),
                      util::formatSeconds(r.stream.p95LatencySeconds),
                      util::formatDouble(shed_pct, 1) + "%",
                      util::formatDouble(r.nodeHours, 3),
                      met ? "meets SLO" : "misses SLO"});
        if (met) {
            chosen = n;
            chosen_result = r;
            break; // more nodes only cost more
        }
    }
    table.print(std::cout);

    if (chosen < 0) {
        std::cout << "\nno node count up to " << max_nodes
                  << " meets the targets; raise --plan-max-nodes or "
                  << "relax the SLO\n";
        return 1;
    }
    std::cout << "\nPlan: " << chosen << " node"
              << (chosen == 1 ? "" : "s") << " ("
              << util::formatDouble(chosen_result.nodeHours, 3)
              << " node-hours, p95 "
              << util::formatSeconds(
                     chosen_result.stream.p95LatencySeconds)
              << ", "
              << util::formatDouble(chosen_result.stream.shedRate * 100,
                                    1)
              << "% shed)\n";
    return 0;
}

int
runClusterCmd(int argc, char **argv)
{
    coe::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.placement = coe::PlacementPolicy::ReplicateHotPartitionCold;
    cfg.dispatch = coe::DispatchPolicy::LeastOutstanding;
    cfg.node.mode = coe::ServingMode::EventDriven;
    cfg.node.batch = 8;
    cfg.node.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    std::string scheduler_name = "affinity";

    FlagParser parser("cluster", clusterHelp);
    WorkloadFlagState wst;
    ArrivalFlagState ast;
    ScenarioFlagState sst;
    ControllerFlagState cst;
    PlanFlagState plan;
    ExecFlagState exec;
    FaultFlagState fst;
    FabricFlagState fab;
    SpecZooFlagState szst;
    bool set_experts = false;
    addWorkloadFlags(parser, cfg.node, wst);
    addArrivalFlags(parser, cfg.node, ast);
    addScenarioFlags(parser, cfg.node, sst);
    addCoreServingFlags(parser, cfg.node, scheduler_name, &set_experts);
    addSpecZooFlags(parser, cfg.node, szst);
    addControllerFlags(parser, cfg.controller, cst);
    addPlanFlags(parser, plan);
    addExecFlags(parser, exec);
    addFaultFlags(parser, cfg.faultPolicy, fst);
    addFabricFlags(parser, cfg.fabric, fab);

    bool set_rate = false, set_hot = false;
    bool set_drain_at = false, set_drain_node = false;
    bool set_rejoin = false, set_diurnal_amp = false;
    bool set_diurnal_period = false;
    std::vector<int> node_dma;
    std::vector<double> node_region_gb;
    std::string schedule_csv;
    std::string json_path;

    parser.value("--nodes", [&](const std::string &v) {
        cfg.nodes = std::stoi(v);
    });
    parser.value("--placement", [&](const std::string &v) {
        cfg.placement = coe::placementPolicyFromName(v);
    });
    parser.value("--dispatch", [&](const std::string &v) {
        cfg.dispatch = coe::dispatchPolicyFromName(v);
    });
    parser.value("--hot-experts", [&](const std::string &v) {
        cfg.hotExperts = std::stoi(v);
        set_hot = true;
    });
    parser.value("--drain-at", [&](const std::string &v) {
        cfg.drainAtSeconds = std::stod(v);
        set_drain_at = true;
    });
    parser.value("--drain-node", [&](const std::string &v) {
        cfg.drainNode = std::stoi(v);
        set_drain_node = true;
    });
    parser.value("--rejoin-at", [&](const std::string &v) {
        cfg.rejoinAtSeconds = std::stod(v);
        set_rejoin = true;
    });
    parser.value("--schedule", [&](const std::string &v) {
        schedule_csv = v;
    });
    parser.value("--diurnal-amplitude", [&](const std::string &v) {
        cfg.diurnalAmplitude = std::stod(v);
        set_diurnal_amp = true;
    });
    parser.value("--diurnal-period", [&](const std::string &v) {
        cfg.diurnalPeriodSeconds = std::stod(v);
        set_diurnal_period = true;
    });
    parser.value("--node-dma-engines", [&](const std::string &v) {
        node_dma = parseList<int>(
            parser, v, +[](const std::string &s) { return std::stoi(s); });
    });
    parser.value("--node-region-gb", [&](const std::string &v) {
        node_region_gb = parseList<double>(
            parser, v, +[](const std::string &s) { return std::stod(s); });
    });
    parser.value("--json", [&](const std::string &v) { json_path = v; });

    if (parser.parse(argc, argv, std::cout))
        return 0;
    validateWorkloadFlags(parser, cfg.node, wst);
    validateArrivalFlags(parser, cfg.node, ast);
    validateScenarioFlags(parser, cfg.node, sst, ast);
    validateSpecZooFlags(parser, cfg.node, szst, set_experts);
    validateControllerFlags(parser, cfg.controller, cst);
    validatePlanFlags(parser, plan);
    validateFaultFlags(parser, cfg.faultPolicy, fst, cfg.node);
    validateFabricFlags(parser, cfg.fabric, fab, cfg.dispatch);
    validateClusterExecFlags(parser, exec, cfg.node, cfg.dispatch, ast,
                             sst);
    if (exec.threads > cfg.nodes && cfg.nodes > 0) {
        std::cerr << "warning: --threads " << exec.threads
                  << " exceeds --nodes " << cfg.nodes
                  << "; clamping to one worker per node\n";
        exec.threads = cfg.nodes;
    }
    cfg.threads = exec.threads;
    // The diurnal ramp shapes the arrival generator, which a replay
    // bypasses entirely — reject it like the other generator flags
    // instead of silently replaying the flat recorded stream.
    if (!cfg.node.workload.traceIn.empty() &&
        (set_diurnal_amp || set_diurnal_period))
        parser.fail("--trace-in replays a recorded request stream; "
                    "--diurnal-amplitude/--diurnal-period do not "
                    "apply");
    // The shared arrival group tracked whether --arrival-rate was set;
    // if not, the open-loop default scales with the cluster size.
    set_rate = ast.setArrivalRate;

    if (cfg.nodes <= 0)
        parser.fail("--nodes must be at least 1");
    if (scheduler_name == "both")
        parser.fail("cluster runs a single scheduler; pick fifo or "
                    "affinity");
    cfg.node.scheduler = coe::schedulerPolicyFromName(scheduler_name);
    if (set_hot &&
        cfg.placement != coe::PlacementPolicy::ReplicateHotPartitionCold)
        parser.fail("--hot-experts requires --placement replicate-hot");
    if (set_drain_at && cfg.drainAtSeconds <= 0.0)
        parser.fail("--drain-at must be positive (the drain fires "
                    "mid-run)");
    if ((set_drain_node || set_rejoin) && !set_drain_at)
        parser.fail("--drain-node/--rejoin-at require --drain-at");
    if (set_diurnal_period && !set_diurnal_amp)
        parser.fail("--diurnal-period requires --diurnal-amplitude");
    if (!schedule_csv.empty())
        cfg.actions = parseScheduleList(parser, schedule_csv);
    if (!node_dma.empty() &&
        static_cast<int>(node_dma.size()) != cfg.nodes)
        parser.fail("--node-dma-engines needs exactly --nodes entries");
    if (!node_region_gb.empty() &&
        static_cast<int>(node_region_gb.size()) != cfg.nodes)
        parser.fail("--node-region-gb needs exactly --nodes entries");
    for (int n = 0; n < cfg.nodes; ++n) {
        coe::ClusterNodeOverride o;
        o.node = n;
        if (!node_dma.empty())
            o.dmaEngines = node_dma[static_cast<std::size_t>(n)];
        if (!node_region_gb.empty()) {
            double gb = node_region_gb[static_cast<std::size_t>(n)];
            if (gb <= 0.0)
                parser.fail("--node-region-gb entries must be positive");
            o.expertRegionBytes = static_cast<std::int64_t>(gb * 1e9);
        }
        if (o.dmaEngines > 0 || o.expertRegionBytes > 0)
            cfg.overrides.push_back(o);
    }
    if (!set_rate && cfg.node.arrival == coe::ArrivalProcess::Poisson)
        cfg.node.arrivalRatePerSec = 8.0 * cfg.nodes;
    if (fst.setFaults) {
        // Parse (and strictly validate) once; the simulator re-checks
        // the schedule against the final node count.
        cfg.faults =
            std::make_shared<const std::vector<coe::FaultEvent>>(
                coe::loadFaultSchedule(fst.faultsPath));
    }

    if (plan.plan) {
        if (!json_path.empty())
            parser.fail("--json reports a single cluster run; it does "
                        "not combine with --plan-capacity");
        if (fst.setFaults || cfg.faultPolicy.anyEnabled())
            parser.fail("--plan-capacity sizes clean static clusters; "
                        "drop --faults and the degraded-mode flags");
        return runPlanCapacity(parser, cfg, plan, set_rate);
    }

    std::cout << "CoE cluster on "
              << coe::platformName(cfg.node.platform) << ": "
              << cfg.nodes << " nodes, " << cfg.node.numExperts
              << " experts, placement "
              << coe::placementPolicyName(cfg.placement) << ", dispatch "
              << coe::dispatchPolicyName(cfg.dispatch) << ", "
              << (cfg.node.arrival == coe::ArrivalProcess::Poisson
                      ? "open-loop " +
                            util::formatDouble(cfg.node.arrivalRatePerSec,
                                               1) +
                            " req/s"
                      : "closed-loop " + std::to_string(cfg.node.clients) +
                            " clients")
              << (cfg.diurnalAmplitude > 0.0
                      ? " (diurnal x" +
                            util::formatDouble(1.0 + cfg.diurnalAmplitude,
                                               2) +
                            " peak)"
                      : "")
              << ", " << cfg.node.streamRequests << " requests, "
              << coe::routingDistributionName(cfg.node.routing)
              << " routing"
              << (cfg.controller.policy != coe::ControllerPolicy::Static
                      ? std::string(", controller ") +
                            coe::controllerPolicyName(
                                cfg.controller.policy)
                      : "")
              << (cfg.fabric.enabled
                      ? std::string(", fabric ") +
                            sim::topologyName(cfg.fabric.topology) +
                            " (" +
                            util::formatDouble(cfg.fabric.linkGbps, 0) +
                            " Gb/s links, " +
                            util::formatDouble(cfg.fabric.linkLatencyUs,
                                               1) +
                            " us)"
                      : "")
              << "\n\n";

    coe::ClusterSimulator sim(cfg);
    coe::ClusterResult r = sim.run();
    if (r.oom) {
        std::cout << "OUT OF MEMORY: a node's placed experts exceed its "
                  << "backing capacity\n";
        return 1;
    }

    util::Table table({"Node", "Placed", "Dispatched", "Completed",
                       "Shed", "Batches", "Miss rate", "p50", "p95",
                       "Queue depth", "Peak HBM"});
    for (const coe::ClusterNodeMetrics &nm : r.nodes) {
        table.addRow({std::to_string(nm.node) +
                          (nm.drained ? " (drained)" : ""),
                      std::to_string(nm.placedExperts),
                      std::to_string(nm.dispatched),
                      std::to_string(nm.completed),
                      std::to_string(nm.shed),
                      std::to_string(nm.batches),
                      util::formatDouble(nm.missRate * 100, 1) + "%",
                      util::formatSeconds(nm.p50LatencySeconds),
                      util::formatSeconds(nm.p95LatencySeconds),
                      util::formatDouble(nm.meanQueueDepth, 1) +
                          " avg / " +
                          util::formatDouble(nm.maxQueueDepth, 0) +
                          " max",
                      util::formatBytes(static_cast<double>(
                          nm.peakResidentBytes))});
    }
    table.print(std::cout);

    const coe::StreamMetrics &m = r.stream;
    std::cout << "\nCluster: p50 "
              << util::formatSeconds(m.p50LatencySeconds) << ", p95 "
              << util::formatSeconds(m.p95LatencySeconds) << ", p99 "
              << util::formatSeconds(m.p99LatencySeconds) << ", "
              << util::formatDouble(m.throughputRequestsPerSec, 2)
              << " req/s, miss rate "
              << util::formatDouble(r.missRate * 100, 1)
              << "%, load imbalance "
              << util::formatDouble(r.loadImbalance, 2) << "x";
    if (m.shed > 0 || cfg.node.workload.sloSeconds > 0.0)
        std::cout << ", " << m.shed << " shed ("
                  << util::formatDouble(m.shedRate * 100, 1)
                  << "% of arrivals)";
    std::cout << "\n";
    std::cout << "Placement: " << r.expertReplicas << " expert replicas, "
              << util::formatBytes(r.placedBytesTotal) << " placed, "
              << util::formatBytes(
                     static_cast<double>(r.peakResidentBytesTotal))
              << " peak resident HBM\n";
    std::cout << "Provisioning: "
              << util::formatDouble(r.nodeHours, 3) << " node-hours ("
              << util::formatDouble(r.nodeSecondsLive, 1)
              << " node-seconds live)\n";
    if (cfg.controller.policy != coe::ControllerPolicy::Static) {
        std::cout << "Controller: "
                  << coe::controllerPolicyName(cfg.controller.policy)
                  << ", " << r.controllerTicks << " ticks, "
                  << r.controllerActions << " actions";
        if (!cfg.controller.logPath.empty())
            std::cout << ", log " << cfg.controller.logPath;
        std::cout << "\n";
    }
    if (cfg.fabric.enabled) {
        std::cout << "Interconnect: "
                  << sim::topologyName(cfg.fabric.topology) << ", "
                  << r.networkMessages << " messages ("
                  << r.networkFlits << " flits), "
                  << r.networkCreditStalls << " credit stalls, link "
                  << "utilization "
                  << util::formatDouble(
                         r.networkMeanLinkUtilization * 100, 1)
                  << "% mean / "
                  << util::formatDouble(
                         r.networkMaxLinkUtilization * 100, 1)
                  << "% max\n";
    }
    if (cfg.faults || cfg.faultPolicy.anyEnabled()) {
        std::cout << "Chaos: " << r.faultsInjected
                  << " faults injected (" << r.crashes << " crash"
                  << (r.crashes == 1 ? "" : "es") << "), " << m.lost
                  << " lost, " << m.retried << " retried, " << m.hedged
                  << " hedged (" << m.hedgeWon << " hedge win"
                  << (m.hedgeWon == 1 ? "" : "s") << ")\n";
    }
    if (!cfg.actions.empty())
        std::cout << "Schedule: " << cfg.actions.size()
                  << " scripted action"
                  << (cfg.actions.size() == 1 ? "" : "s") << " applied, "
                  << r.redispatched << " requests re-dispatched\n";
    if (cfg.drainAtSeconds > 0.0) {
        std::cout << "Drain: node " << cfg.drainNode << " drained at "
                  << util::formatDouble(cfg.drainAtSeconds, 1) << " s, "
                  << r.redispatched << " queued requests re-dispatched"
                  << (cfg.rejoinAtSeconds > 0.0
                          ? ", rejoined cold at " +
                                util::formatDouble(cfg.rejoinAtSeconds,
                                                   1) +
                                " s"
                          : ", no rejoin")
                  << "\n";
    }
    if (!cfg.node.workload.traceOut.empty())
        std::cout << "wrote request trace to "
                  << cfg.node.workload.traceOut << "\n";
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            parser.fail("cannot write " + json_path);
        coe::writeClusterJson(out, cfg, r);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServe(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return runSweepCmd(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "cluster") == 0)
        return runClusterCmd(argc, argv);

    std::string model_name = "llama2-7b";
    std::string phase_name = "decode";
    std::string config_name = "fused-ho";
    std::string trace_path;
    int seq = 2048, batch = 1, tp = 8, sockets = 8;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--model") model_name = next();
        else if (arg == "--phase") phase_name = next();
        else if (arg == "--seq") seq = std::stoi(next());
        else if (arg == "--batch") batch = std::stoi(next());
        else if (arg == "--tp") tp = std::stoi(next());
        else if (arg == "--sockets") sockets = std::stoi(next());
        else if (arg == "--config") config_name = next();
        else if (arg == "--trace") trace_path = next();
        else usage();
    }

    models::WorkloadSpec spec;
    spec.model = modelByName(model_name);
    spec.seqLen = seq;
    spec.batch = batch;
    spec.tensorParallel = tp;
    if (phase_name == "prefill") spec.phase = models::Phase::Prefill;
    else if (phase_name == "decode") spec.phase = models::Phase::Decode;
    else if (phase_name == "train") spec.phase = models::Phase::Train;
    else usage();

    runtime::RunConfig config;
    if (config_name == "fused-ho") config = runtime::RunConfig::FusedHO;
    else if (config_name == "fused-so")
        config = runtime::RunConfig::FusedSO;
    else if (config_name == "unfused")
        config = runtime::RunConfig::Unfused;
    else usage();

    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(sockets);

    // Compile + run (with optional tracing, mirroring runWorkload).
    compiler::CompileOptions options;
    options.fusion.tensorParallel = tp;
    options.fusion.mode = config == runtime::RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, node_cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    if (!trace_path.empty())
        executor.setTrace(&trace);
    runtime::ExecutionResult result = executor.run(
        prog, config == runtime::RunConfig::FusedHO
                  ? arch::Orchestration::Hardware
                  : arch::Orchestration::Software);

    util::Table report({"Quantity", "Value"});
    report.addRow({"Workload", spec.str()});
    report.addRow({"Config", runtime::runConfigName(config)});
    report.addRow({"Sockets", std::to_string(sockets) +
                                  " (TP" + std::to_string(tp) + ")"});
    report.addRow({"Graph ops", std::to_string(g.numOps())});
    report.addRow({"FLOPs", util::formatDouble(g.totalFlops() / 1e12, 2) +
                                " TFLOP"});
    report.addRow({"Weights", util::formatBytes(g.weightBytes())});
    report.addRow({"Kernels", std::to_string(prog.kernels.size())});
    report.addRow({"Launches", std::to_string(prog.totalLaunches)});
    report.addRow({"HBM resident/socket",
                   util::formatBytes(prog.hbmResidentBytes)});
    report.addRow({"DDR spill/socket",
                   util::formatBytes(prog.ddrResidentBytes)});
    report.addRow({"Total time", util::formatSeconds(result.seconds())});
    report.addRow({"  launch overhead",
                   util::formatSeconds(result.launchSeconds())});
    report.addRow({"  execution",
                   util::formatSeconds(result.execSeconds())});
    if (spec.phase == models::Phase::Decode) {
        report.addRow({"Tokens/s/user",
                       util::formatDouble(1.0 / result.seconds(), 0)});
    }
    report.print(std::cout);

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        trace.writeJson(out);
        std::cout << "\nwrote " << trace.eventCount()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing or Perfetto)\n";
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const tools::FlagUsageError &e) {
        std::cerr << "error: " << e.what() << "\n"
                  << "run `sn40l_run " << e.subcommand()
                  << " --help` for the flag reference\n";
    } catch (const std::invalid_argument &) {
        std::cerr << "error: malformed numeric argument\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
    }
    return 1;
}
