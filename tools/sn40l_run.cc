/**
 * @file
 * sn40l_run: command-line driver for the simulator. Compiles and
 * executes one workload and prints a report; optionally writes a
 * Chrome trace-event timeline.
 *
 *   sn40l_run --model llama2-7b --phase decode --seq 2048 --tp 8 \
 *             [--batch 1] [--config fused-ho|fused-so|unfused] \
 *             [--sockets 8] [--trace out.json]
 *
 * The `serve` subcommand drives the event-driven CoE request-stream
 * scheduler instead and reports tail latency and throughput; expert
 * switches are real DMA transfers on the platform's three-tier
 * memory system:
 *
 *   sn40l_run serve --arrival-rate=8 [--experts 150] [--batch 8] \
 *             [--requests 512] [--scheduler fifo|affinity|both] \
 *             [--routing uniform|zipf|round-robin] [--zipf-s 1.0] \
 *             [--platform sn40l|dgx-a100|dgx-h100] [--closed-loop] \
 *             [--clients 16] [--think 0.0] [--tokens 20] [--seed 1] \
 *             [--prefetch] [--prefetch-depth 4] [--dma-engines 2] \
 *             [--expert-region-gb 96]
 *
 * `sn40l_run serve --help` documents every serve flag.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "coe/serving.h"
#include "coe/sweep.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/trace.h"
#include "util/table.h"

using namespace sn40l;

namespace {

models::LlmConfig
modelByName(const std::string &name)
{
    using models::LlmConfig;
    static const std::map<std::string, LlmConfig (*)()> zoo = {
        {"llama2-7b", &LlmConfig::llama2_7b},
        {"llama2-13b", &LlmConfig::llama2_13b},
        {"sparsegpt-13b", &LlmConfig::sparseGpt13b},
        {"llama2-70b", &LlmConfig::llama2_70b},
        {"llama3.1-8b", &LlmConfig::llama31_8b},
        {"llama3.1-70b", &LlmConfig::llama31_70b},
        {"llama3.1-405b", &LlmConfig::llama31_405b},
        {"mistral-7b", &LlmConfig::mistral7b},
        {"falcon-40b", &LlmConfig::falcon40b},
        {"bloom-176b", &LlmConfig::bloom176b},
        {"llava1.5-7b", &LlmConfig::llava15_7b},
    };
    auto it = zoo.find(name);
    if (it == zoo.end()) {
        std::cerr << "unknown model '" << name << "'. Available:\n";
        for (const auto &kv : zoo)
            std::cerr << "  " << kv.first << "\n";
        std::exit(1);
    }
    return it->second();
}

void
serveHelp(std::ostream &os)
{
    os << "usage: sn40l_run serve [flags]\n"
       << "\n"
       << "Event-driven CoE request-stream serving: requests arrive, are\n"
       << "continuously batched against the live LRU expert cache, and\n"
       << "every expert switch streams DDR->HBM through the platform's\n"
       << "DMA engines, contending with decode traffic.\n"
       << "\n"
       << "Workload:\n"
       << "  --platform P          sn40l | dgx-a100 | dgx-h100 "
       << "(default sn40l)\n"
       << "  --experts N           experts in the zoo (default 150)\n"
       << "  --batch N             max prompts per batch (default 8)\n"
       << "  --tokens N            output tokens per prompt (default 20)\n"
       << "  --requests N          requests to stream (default 512)\n"
       << "  --routing D           uniform | zipf | round-robin\n"
       << "  --zipf-s S            Zipf skew (requires --routing zipf)\n"
       << "  --seed N              RNG seed (default 1)\n"
       << "\n"
       << "Arrivals:\n"
       << "  --arrival-rate R      open-loop Poisson rate, req/s "
       << "(default 8)\n"
       << "  --closed-loop         fixed client pool instead of Poisson\n"
       << "  --clients N           pool size (requires --closed-loop)\n"
       << "  --think SEC           client think time (requires "
       << "--closed-loop)\n"
       << "\n"
       << "Scheduler:\n"
       << "  --scheduler S         fifo | affinity | both (default both)\n"
       << "\n"
       << "Memory system:\n"
       << "  --prefetch            speculative prefetch: queued requests'\n"
       << "                        experts stream at low DMA priority\n"
       << "  --prefetch-depth N    max outstanding prefetches (requires\n"
       << "                        --prefetch; default 4)\n"
       << "  --prefetch-window N   queued requests the prefetcher\n"
       << "                        inspects per decision (0 = whole\n"
       << "                        queue, the default; bound it for\n"
       << "                        overloaded runs)\n"
       << "  --dma-engines N       DMA engines streaming experts "
       << "(default 2)\n"
       << "  --expert-region-gb G  HBM expert-region size in GB "
       << "(default:\n"
       << "                        platform HBM minus router/KV reserve)\n";
}

void
sweepHelp(std::ostream &os)
{
    os << "usage: sn40l_run sweep [flags]\n"
       << "\n"
       << "Cartesian sweep of event-driven serving points (experts x\n"
       << "arrival rates x batch sizes x schedulers x seeds), sharded\n"
       << "across a thread pool. Every point is an independent\n"
       << "deterministic simulation with its own event queue, so\n"
       << "`-j N` produces bit-identical per-point results to `-j 1`.\n"
       << "\n"
       << "Axes (comma-separated lists):\n"
       << "  --experts LIST        e.g. 50,100,150 (default 150)\n"
       << "  --arrival-rate LIST   req/s, e.g. 8,16,24 (default 8)\n"
       << "  --batch LIST          max prompts per batch (default 8)\n"
       << "  --scheduler S         fifo | affinity | both (default both)\n"
       << "  --seeds LIST          RNG seeds, e.g. 1,2,3 (default 1)\n"
       << "\n"
       << "Per-point workload (same meaning as `serve`):\n"
       << "  --platform P          sn40l | dgx-a100 | dgx-h100\n"
       << "  --requests N          requests per point (default 512)\n"
       << "  --tokens N            output tokens per prompt\n"
       << "  --routing D           uniform | zipf | round-robin\n"
       << "  --zipf-s S            Zipf skew (requires --routing zipf)\n"
       << "  --prefetch            speculative prefetch\n"
       << "  --prefetch-depth N    max outstanding prefetches\n"
       << "  --prefetch-window N   prefetcher inspection window\n"
       << "                        (0 = whole queue)\n"
       << "  --dma-engines N       DMA engines per point\n"
       << "  --expert-region-gb G  HBM expert-region size in GB\n"
       << "\n"
       << "Execution:\n"
       << "  -j N / --jobs N       worker threads (default: hardware\n"
       << "                        concurrency)\n"
       << "  --json FILE           write per-point metrics as JSON\n";
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: sn40l_run --model NAME --phase "
              << "prefill|decode|train [--seq N] [--batch N]\n"
              << "       [--tp N] [--sockets N] [--config "
              << "fused-ho|fused-so|unfused] [--trace FILE]\n"
              << "   or: sn40l_run serve [flags]  "
              << "(see `sn40l_run serve --help`)\n"
              << "   or: sn40l_run sweep [flags]  "
              << "(see `sn40l_run sweep --help`)\n";
    std::exit(1);
}

[[noreturn]] void
subcommandError(const std::string &msg, const char *subcommand)
{
    std::cerr << "error: " << msg << "\n"
              << "run `sn40l_run " << subcommand
              << " --help` for the flag reference\n";
    std::exit(1);
}

[[noreturn]] void
serveError(const std::string &msg)
{
    subcommandError(msg, "serve");
}

[[noreturn]] void
sweepError(const std::string &msg)
{
    subcommandError(msg, "sweep");
}

/**
 * Flatten "--flag=value" arguments into "--flag value" so both
 * spellings parse through the same next()-style loop.
 */
std::vector<std::string>
splitEqualsArgs(int argc, char **argv, int first)
{
    std::vector<std::string> out;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            out.push_back(arg.substr(0, eq));
            out.push_back(arg.substr(eq + 1));
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

coe::Platform
platformByName(const std::string &name)
{
    if (name == "sn40l") return coe::Platform::Sn40l;
    if (name == "dgx-a100") return coe::Platform::DgxA100;
    if (name == "dgx-h100") return coe::Platform::DgxH100;
    std::cerr << "unknown platform '" << name
              << "' (expected sn40l, dgx-a100, or dgx-h100)\n";
    std::exit(1);
}

int
runServe(int argc, char **argv)
{
    coe::ServingConfig cfg;
    cfg.mode = coe::ServingMode::EventDriven;
    cfg.batch = 8;
    std::string scheduler_name = "both";

    bool set_arrival_rate = false, set_clients = false, set_think = false;
    bool set_zipf_s = false, set_prefetch_depth = false;
    bool set_prefetch_window = false;

    std::vector<std::string> args = splitEqualsArgs(argc, argv, 2);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                serveError("flag " + arg + " expects a value");
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            serveHelp(std::cout);
            return 0;
        }
        else if (arg == "--platform") cfg.platform = platformByName(next());
        else if (arg == "--experts") cfg.numExperts = std::stoi(next());
        else if (arg == "--batch") cfg.batch = std::stoi(next());
        else if (arg == "--tokens") cfg.outputTokens = std::stoi(next());
        else if (arg == "--requests") cfg.streamRequests = std::stoi(next());
        else if (arg == "--arrival-rate") {
            cfg.arrivalRatePerSec = std::stod(next());
            set_arrival_rate = true;
        }
        else if (arg == "--closed-loop")
            cfg.arrival = coe::ArrivalProcess::ClosedLoop;
        else if (arg == "--clients") {
            cfg.clients = std::stoi(next());
            set_clients = true;
        }
        else if (arg == "--think") {
            cfg.thinkSeconds = std::stod(next());
            set_think = true;
        }
        else if (arg == "--scheduler") scheduler_name = next();
        else if (arg == "--routing")
            cfg.routing = coe::routingDistributionFromName(next());
        else if (arg == "--zipf-s") {
            cfg.zipfS = std::stod(next());
            set_zipf_s = true;
        }
        else if (arg == "--seed") cfg.seed = std::stoull(next());
        else if (arg == "--prefetch") cfg.predictivePrefetch = true;
        else if (arg == "--prefetch-depth") {
            cfg.prefetchDepth = std::stoi(next());
            set_prefetch_depth = true;
        }
        else if (arg == "--prefetch-window") {
            cfg.prefetchWindow = std::stoi(next());
            set_prefetch_window = true;
        }
        else if (arg == "--dma-engines") cfg.dmaEngines = std::stoi(next());
        else if (arg == "--expert-region-gb") {
            double gb = std::stod(next());
            if (gb <= 0.0)
                serveError("--expert-region-gb must be positive");
            cfg.expertRegionBytes = static_cast<std::int64_t>(gb * 1e9);
        }
        else serveError("unknown serve flag '" + arg + "'");
    }

    // Reject contradictory combinations instead of silently ignoring
    // half of them.
    if (cfg.arrival == coe::ArrivalProcess::ClosedLoop && set_arrival_rate)
        serveError("--arrival-rate is an open-loop parameter; it cannot "
                   "be combined with --closed-loop");
    if (cfg.arrival != coe::ArrivalProcess::ClosedLoop &&
        (set_clients || set_think))
        serveError("--clients/--think only apply to --closed-loop runs");
    if (set_zipf_s && cfg.routing != coe::RoutingDistribution::Zipf)
        serveError("--zipf-s requires --routing zipf");
    if (set_prefetch_depth && !cfg.predictivePrefetch)
        serveError("--prefetch-depth requires --prefetch");
    if (set_prefetch_window && !cfg.predictivePrefetch)
        serveError("--prefetch-window requires --prefetch");
    if (cfg.prefetchWindow < 0)
        serveError("--prefetch-window must be non-negative");
    if (cfg.dmaEngines <= 0)
        serveError("--dma-engines must be at least 1");
    if (cfg.prefetchDepth < 0)
        serveError("--prefetch-depth must be non-negative");

    std::vector<coe::SchedulerPolicy> policies;
    if (scheduler_name == "both") {
        policies = {coe::SchedulerPolicy::Fifo,
                    coe::SchedulerPolicy::ExpertAffinity};
    } else {
        policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::cout << "CoE request stream on " << coe::platformName(cfg.platform)
              << ": " << cfg.numExperts << " experts, "
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? "open-loop Poisson "
                      : "closed-loop ")
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? util::formatDouble(cfg.arrivalRatePerSec, 1) +
                            " req/s"
                      : std::to_string(cfg.clients) + " clients")
              << ", " << cfg.streamRequests << " requests, max batch "
              << cfg.batch << ", "
              << coe::routingDistributionName(cfg.routing)
              << " routing\n\n";

    util::Table table({"Scheduler", "p50", "p95", "p99", "Throughput",
                       "Tokens/s", "Miss rate", "Miss-stall p95",
                       "Queue depth", "Batch occupancy"});
    std::vector<std::string> prefetch_lines;
    for (coe::SchedulerPolicy policy : policies) {
        cfg.scheduler = policy;
        coe::ServingSimulator sim(cfg);
        coe::ServingResult r = sim.run();
        if (r.oom) {
            table.addRow({coe::schedulerPolicyName(policy), "-", "-", "-",
                          "OUT OF MEMORY"});
            continue;
        }
        const coe::StreamMetrics &m = r.stream;
        if (cfg.predictivePrefetch) {
            prefetch_lines.push_back(
                std::string(coe::schedulerPolicyName(policy)) + ": " +
                std::to_string(m.prefetchesIssued) + " issued, " +
                std::to_string(m.prefetchHits) + " hit by a batch, " +
                std::to_string(m.prefetchesCancelled) +
                " cancelled under eviction pressure");
        }
        table.addRow({coe::schedulerPolicyName(policy),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(m.throughputTokensPerSec, 1),
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      util::formatSeconds(m.p95SwitchStallSeconds),
                      util::formatDouble(m.meanQueueDepth, 1) + " avg / " +
                          util::formatDouble(m.maxQueueDepth, 0) + " max",
                      util::formatDouble(m.meanBatchOccupancy, 2)});
    }
    table.print(std::cout);
    if (!prefetch_lines.empty()) {
        std::cout << "\nSpeculative prefetch:\n";
        for (const std::string &line : prefetch_lines)
            std::cout << "  " << line << "\n";
    }
    return 0;
}

template <typename T>
std::vector<T>
parseList(const std::string &csv, T (*parse)(const std::string &))
{
    std::vector<T> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            sweepError("empty element in list '" + csv + "'");
        out.push_back(parse(item));
    }
    if (out.empty())
        sweepError("empty list argument");
    return out;
}

int
runSweepCmd(int argc, char **argv)
{
    coe::SweepGrid grid;
    grid.base.mode = coe::ServingMode::EventDriven;
    grid.base.batch = 8;
    grid.base.arrivalRatePerSec = 8.0;
    std::string scheduler_name = "both";
    std::string json_path;
    int jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0)
        jobs = 1;
    bool set_zipf_s = false, set_prefetch_depth = false;
    bool set_prefetch_window = false;

    std::vector<std::string> args = splitEqualsArgs(argc, argv, 2);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                sweepError("flag " + arg + " expects a value");
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            sweepHelp(std::cout);
            return 0;
        }
        else if (arg == "--platform")
            grid.base.platform = platformByName(next());
        else if (arg == "--experts") {
            grid.expertCounts = parseList<int>(
                next(), +[](const std::string &s) { return std::stoi(s); });
        }
        else if (arg == "--arrival-rate") {
            grid.arrivalRates = parseList<double>(
                next(), +[](const std::string &s) { return std::stod(s); });
        }
        else if (arg == "--batch") {
            grid.batchSizes = parseList<int>(
                next(), +[](const std::string &s) { return std::stoi(s); });
        }
        else if (arg == "--seeds") {
            grid.seeds = parseList<std::uint64_t>(
                next(), +[](const std::string &s) {
                    return static_cast<std::uint64_t>(std::stoull(s));
                });
        }
        else if (arg == "--scheduler") scheduler_name = next();
        else if (arg == "--requests")
            grid.base.streamRequests = std::stoi(next());
        else if (arg == "--tokens") grid.base.outputTokens = std::stoi(next());
        else if (arg == "--routing")
            grid.base.routing = coe::routingDistributionFromName(next());
        else if (arg == "--zipf-s") {
            grid.base.zipfS = std::stod(next());
            set_zipf_s = true;
        }
        else if (arg == "--prefetch") grid.base.predictivePrefetch = true;
        else if (arg == "--prefetch-depth") {
            grid.base.prefetchDepth = std::stoi(next());
            set_prefetch_depth = true;
        }
        else if (arg == "--prefetch-window") {
            grid.base.prefetchWindow = std::stoi(next());
            set_prefetch_window = true;
        }
        else if (arg == "--dma-engines")
            grid.base.dmaEngines = std::stoi(next());
        else if (arg == "--expert-region-gb") {
            double gb = std::stod(next());
            if (gb <= 0.0)
                sweepError("--expert-region-gb must be positive");
            grid.base.expertRegionBytes =
                static_cast<std::int64_t>(gb * 1e9);
        }
        else if (arg == "-j" || arg == "--jobs") jobs = std::stoi(next());
        else if (arg == "--json") json_path = next();
        else sweepError("unknown sweep flag '" + arg + "'");
    }

    if (set_zipf_s && grid.base.routing != coe::RoutingDistribution::Zipf)
        sweepError("--zipf-s requires --routing zipf");
    if (set_prefetch_depth && !grid.base.predictivePrefetch)
        sweepError("--prefetch-depth requires --prefetch");
    if (set_prefetch_window && !grid.base.predictivePrefetch)
        sweepError("--prefetch-window requires --prefetch");
    if (grid.base.prefetchWindow < 0)
        sweepError("--prefetch-window must be non-negative");
    if (jobs <= 0)
        sweepError("--jobs must be at least 1");

    if (scheduler_name == "both") {
        grid.policies = {coe::SchedulerPolicy::Fifo,
                         coe::SchedulerPolicy::ExpertAffinity};
    } else {
        grid.policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::vector<coe::SweepPoint> points = grid.points();
    std::cout << "CoE sweep on " << coe::platformName(grid.base.platform)
              << ": " << points.size() << " points x "
              << grid.base.streamRequests << " requests, " << jobs
              << " worker thread" << (jobs == 1 ? "" : "s") << "\n\n";

    auto start = std::chrono::steady_clock::now();
    std::vector<coe::SweepPointResult> results =
        coe::runSweep(points, jobs);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    util::Table table({"Experts", "Rate", "Batch", "Sched", "Seed", "p50",
                       "p95", "p99", "Throughput", "Miss rate", "Events"});
    std::uint64_t total_events = 0;
    for (const coe::SweepPointResult &r : results) {
        const coe::ServingConfig &cfg = r.point.cfg;
        if (r.result.oom) {
            table.addRow({std::to_string(cfg.numExperts),
                          util::formatDouble(cfg.arrivalRatePerSec, 1),
                          std::to_string(cfg.batch),
                          coe::schedulerPolicyName(cfg.scheduler),
                          std::to_string(cfg.seed), "-", "-", "-",
                          "OUT OF MEMORY", "-", "-"});
            continue;
        }
        const coe::StreamMetrics &m = r.result.stream;
        total_events += r.eventsExecuted;
        table.addRow({std::to_string(cfg.numExperts),
                      util::formatDouble(cfg.arrivalRatePerSec, 1),
                      std::to_string(cfg.batch),
                      coe::schedulerPolicyName(cfg.scheduler),
                      std::to_string(cfg.seed),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(r.result.missRate * 100, 1) + "%",
                      std::to_string(r.eventsExecuted)});
    }
    table.print(std::cout);
    std::cout << "\n" << points.size() << " points, " << total_events
              << " simulator events in " << util::formatDouble(wall, 2)
              << " s ("
              << util::formatDouble(
                     wall > 0.0 ? static_cast<double>(total_events) / wall
                                : 0.0,
                     0)
              << " events/s across " << jobs << " threads)\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            sweepError("cannot write " + json_path);
        out << "{\n  \"points\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const coe::SweepPointResult &r = results[i];
            const coe::ServingConfig &cfg = r.point.cfg;
            const coe::StreamMetrics &m = r.result.stream;
            out << "    {\"experts\": " << cfg.numExperts
                << ", \"arrival_rate\": " << cfg.arrivalRatePerSec
                << ", \"batch\": " << cfg.batch << ", \"scheduler\": \""
                << coe::schedulerPolicyName(cfg.scheduler)
                << "\", \"seed\": " << cfg.seed
                << ", \"oom\": " << (r.result.oom ? "true" : "false")
                << ", \"p50_s\": " << m.p50LatencySeconds
                << ", \"p95_s\": " << m.p95LatencySeconds
                << ", \"p99_s\": " << m.p99LatencySeconds
                << ", \"mean_s\": " << m.meanLatencySeconds
                << ", \"throughput_rps\": " << m.throughputRequestsPerSec
                << ", \"miss_rate\": " << r.result.missRate
                << ", \"events\": " << r.eventsExecuted
                << ", \"wall_s\": " << r.wallSeconds << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"jobs\": " << jobs
            << ",\n  \"wall_s\": " << wall << "\n}\n";
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServe(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return runSweepCmd(argc, argv);

    std::string model_name = "llama2-7b";
    std::string phase_name = "decode";
    std::string config_name = "fused-ho";
    std::string trace_path;
    int seq = 2048, batch = 1, tp = 8, sockets = 8;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--model") model_name = next();
        else if (arg == "--phase") phase_name = next();
        else if (arg == "--seq") seq = std::stoi(next());
        else if (arg == "--batch") batch = std::stoi(next());
        else if (arg == "--tp") tp = std::stoi(next());
        else if (arg == "--sockets") sockets = std::stoi(next());
        else if (arg == "--config") config_name = next();
        else if (arg == "--trace") trace_path = next();
        else usage();
    }

    models::WorkloadSpec spec;
    spec.model = modelByName(model_name);
    spec.seqLen = seq;
    spec.batch = batch;
    spec.tensorParallel = tp;
    if (phase_name == "prefill") spec.phase = models::Phase::Prefill;
    else if (phase_name == "decode") spec.phase = models::Phase::Decode;
    else if (phase_name == "train") spec.phase = models::Phase::Train;
    else usage();

    runtime::RunConfig config;
    if (config_name == "fused-ho") config = runtime::RunConfig::FusedHO;
    else if (config_name == "fused-so")
        config = runtime::RunConfig::FusedSO;
    else if (config_name == "unfused")
        config = runtime::RunConfig::Unfused;
    else usage();

    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(sockets);

    // Compile + run (with optional tracing, mirroring runWorkload).
    compiler::CompileOptions options;
    options.fusion.tensorParallel = tp;
    options.fusion.mode = config == runtime::RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, node_cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    if (!trace_path.empty())
        executor.setTrace(&trace);
    runtime::ExecutionResult result = executor.run(
        prog, config == runtime::RunConfig::FusedHO
                  ? arch::Orchestration::Hardware
                  : arch::Orchestration::Software);

    util::Table report({"Quantity", "Value"});
    report.addRow({"Workload", spec.str()});
    report.addRow({"Config", runtime::runConfigName(config)});
    report.addRow({"Sockets", std::to_string(sockets) +
                                  " (TP" + std::to_string(tp) + ")"});
    report.addRow({"Graph ops", std::to_string(g.numOps())});
    report.addRow({"FLOPs", util::formatDouble(g.totalFlops() / 1e12, 2) +
                                " TFLOP"});
    report.addRow({"Weights", util::formatBytes(g.weightBytes())});
    report.addRow({"Kernels", std::to_string(prog.kernels.size())});
    report.addRow({"Launches", std::to_string(prog.totalLaunches)});
    report.addRow({"HBM resident/socket",
                   util::formatBytes(prog.hbmResidentBytes)});
    report.addRow({"DDR spill/socket",
                   util::formatBytes(prog.ddrResidentBytes)});
    report.addRow({"Total time", util::formatSeconds(result.seconds())});
    report.addRow({"  launch overhead",
                   util::formatSeconds(result.launchSeconds())});
    report.addRow({"  execution",
                   util::formatSeconds(result.execSeconds())});
    if (spec.phase == models::Phase::Decode) {
        report.addRow({"Tokens/s/user",
                       util::formatDouble(1.0 / result.seconds(), 0)});
    }
    report.print(std::cout);

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        trace.writeJson(out);
        std::cout << "\nwrote " << trace.eventCount()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing or Perfetto)\n";
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &) {
        std::cerr << "error: malformed numeric argument\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
    }
    return 1;
}
