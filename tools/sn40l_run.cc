/**
 * @file
 * sn40l_run: command-line driver for the simulator. Compiles and
 * executes one workload and prints a report; optionally writes a
 * Chrome trace-event timeline.
 *
 *   sn40l_run --model llama2-7b --phase decode --seq 2048 --tp 8 \
 *             [--batch 1] [--config fused-ho|fused-so|unfused] \
 *             [--sockets 8] [--trace out.json]
 *
 * The `serve` subcommand drives the event-driven CoE request-stream
 * scheduler instead and reports tail latency and throughput:
 *
 *   sn40l_run serve --arrival-rate=8 [--experts 150] [--batch 8] \
 *             [--requests 512] [--scheduler fifo|affinity|both] \
 *             [--routing uniform|zipf|round-robin] [--zipf-s 1.0] \
 *             [--platform sn40l|dgx-a100|dgx-h100] [--closed-loop] \
 *             [--clients 16] [--think 0.0] [--tokens 20] [--seed 1] \
 *             [--prefetch]
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <vector>

#include "coe/serving.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/trace.h"
#include "util/table.h"

using namespace sn40l;

namespace {

models::LlmConfig
modelByName(const std::string &name)
{
    using models::LlmConfig;
    static const std::map<std::string, LlmConfig (*)()> zoo = {
        {"llama2-7b", &LlmConfig::llama2_7b},
        {"llama2-13b", &LlmConfig::llama2_13b},
        {"sparsegpt-13b", &LlmConfig::sparseGpt13b},
        {"llama2-70b", &LlmConfig::llama2_70b},
        {"llama3.1-8b", &LlmConfig::llama31_8b},
        {"llama3.1-70b", &LlmConfig::llama31_70b},
        {"llama3.1-405b", &LlmConfig::llama31_405b},
        {"mistral-7b", &LlmConfig::mistral7b},
        {"falcon-40b", &LlmConfig::falcon40b},
        {"bloom-176b", &LlmConfig::bloom176b},
        {"llava1.5-7b", &LlmConfig::llava15_7b},
    };
    auto it = zoo.find(name);
    if (it == zoo.end()) {
        std::cerr << "unknown model '" << name << "'. Available:\n";
        for (const auto &kv : zoo)
            std::cerr << "  " << kv.first << "\n";
        std::exit(1);
    }
    return it->second();
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: sn40l_run --model NAME --phase "
              << "prefill|decode|train [--seq N] [--batch N]\n"
              << "       [--tp N] [--sockets N] [--config "
              << "fused-ho|fused-so|unfused] [--trace FILE]\n"
              << "   or: sn40l_run serve --arrival-rate=R [--experts N]\n"
              << "       [--batch N] [--requests N] [--tokens N]\n"
              << "       [--scheduler fifo|affinity|both]\n"
              << "       [--routing uniform|zipf|round-robin] [--zipf-s S]\n"
              << "       [--platform sn40l|dgx-a100|dgx-h100]\n"
              << "       [--closed-loop] [--clients N] [--think SEC]\n"
              << "       [--seed N] [--prefetch]\n";
    std::exit(1);
}

/**
 * Flatten "--flag=value" arguments into "--flag value" so both
 * spellings parse through the same next()-style loop.
 */
std::vector<std::string>
splitEqualsArgs(int argc, char **argv, int first)
{
    std::vector<std::string> out;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            out.push_back(arg.substr(0, eq));
            out.push_back(arg.substr(eq + 1));
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

coe::Platform
platformByName(const std::string &name)
{
    if (name == "sn40l") return coe::Platform::Sn40l;
    if (name == "dgx-a100") return coe::Platform::DgxA100;
    if (name == "dgx-h100") return coe::Platform::DgxH100;
    std::cerr << "unknown platform '" << name
              << "' (expected sn40l, dgx-a100, or dgx-h100)\n";
    std::exit(1);
}

int
runServe(int argc, char **argv)
{
    coe::ServingConfig cfg;
    cfg.mode = coe::ServingMode::EventDriven;
    cfg.batch = 8;
    std::string scheduler_name = "both";

    std::vector<std::string> args = splitEqualsArgs(argc, argv, 2);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };
        if (arg == "--platform") cfg.platform = platformByName(next());
        else if (arg == "--experts") cfg.numExperts = std::stoi(next());
        else if (arg == "--batch") cfg.batch = std::stoi(next());
        else if (arg == "--tokens") cfg.outputTokens = std::stoi(next());
        else if (arg == "--requests") cfg.streamRequests = std::stoi(next());
        else if (arg == "--arrival-rate")
            cfg.arrivalRatePerSec = std::stod(next());
        else if (arg == "--closed-loop")
            cfg.arrival = coe::ArrivalProcess::ClosedLoop;
        else if (arg == "--clients") cfg.clients = std::stoi(next());
        else if (arg == "--think") cfg.thinkSeconds = std::stod(next());
        else if (arg == "--scheduler") scheduler_name = next();
        else if (arg == "--routing")
            cfg.routing = coe::routingDistributionFromName(next());
        else if (arg == "--zipf-s") cfg.zipfS = std::stod(next());
        else if (arg == "--seed") cfg.seed = std::stoull(next());
        else if (arg == "--prefetch") cfg.predictivePrefetch = true;
        else usage();
    }

    std::vector<coe::SchedulerPolicy> policies;
    if (scheduler_name == "both") {
        policies = {coe::SchedulerPolicy::Fifo,
                    coe::SchedulerPolicy::ExpertAffinity};
    } else {
        policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::cout << "CoE request stream on " << coe::platformName(cfg.platform)
              << ": " << cfg.numExperts << " experts, "
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? "open-loop Poisson "
                      : "closed-loop ")
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? util::formatDouble(cfg.arrivalRatePerSec, 1) +
                            " req/s"
                      : std::to_string(cfg.clients) + " clients")
              << ", " << cfg.streamRequests << " requests, max batch "
              << cfg.batch << ", "
              << coe::routingDistributionName(cfg.routing)
              << " routing\n\n";

    util::Table table({"Scheduler", "p50", "p95", "p99", "Throughput",
                       "Tokens/s", "Miss rate", "Queue depth",
                       "Batch occupancy"});
    for (coe::SchedulerPolicy policy : policies) {
        cfg.scheduler = policy;
        coe::ServingSimulator sim(cfg);
        coe::ServingResult r = sim.run();
        if (r.oom) {
            table.addRow({coe::schedulerPolicyName(policy), "-", "-", "-",
                          "OUT OF MEMORY"});
            continue;
        }
        const coe::StreamMetrics &m = r.stream;
        table.addRow({coe::schedulerPolicyName(policy),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(m.throughputTokensPerSec, 1),
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      util::formatDouble(m.meanQueueDepth, 1) + " avg / " +
                          util::formatDouble(m.maxQueueDepth, 0) + " max",
                      util::formatDouble(m.meanBatchOccupancy, 2)});
    }
    table.print(std::cout);
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServe(argc, argv);

    std::string model_name = "llama2-7b";
    std::string phase_name = "decode";
    std::string config_name = "fused-ho";
    std::string trace_path;
    int seq = 2048, batch = 1, tp = 8, sockets = 8;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--model") model_name = next();
        else if (arg == "--phase") phase_name = next();
        else if (arg == "--seq") seq = std::stoi(next());
        else if (arg == "--batch") batch = std::stoi(next());
        else if (arg == "--tp") tp = std::stoi(next());
        else if (arg == "--sockets") sockets = std::stoi(next());
        else if (arg == "--config") config_name = next();
        else if (arg == "--trace") trace_path = next();
        else usage();
    }

    models::WorkloadSpec spec;
    spec.model = modelByName(model_name);
    spec.seqLen = seq;
    spec.batch = batch;
    spec.tensorParallel = tp;
    if (phase_name == "prefill") spec.phase = models::Phase::Prefill;
    else if (phase_name == "decode") spec.phase = models::Phase::Decode;
    else if (phase_name == "train") spec.phase = models::Phase::Train;
    else usage();

    runtime::RunConfig config;
    if (config_name == "fused-ho") config = runtime::RunConfig::FusedHO;
    else if (config_name == "fused-so")
        config = runtime::RunConfig::FusedSO;
    else if (config_name == "unfused")
        config = runtime::RunConfig::Unfused;
    else usage();

    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(sockets);

    // Compile + run (with optional tracing, mirroring runWorkload).
    compiler::CompileOptions options;
    options.fusion.tensorParallel = tp;
    options.fusion.mode = config == runtime::RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, node_cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    if (!trace_path.empty())
        executor.setTrace(&trace);
    runtime::ExecutionResult result = executor.run(
        prog, config == runtime::RunConfig::FusedHO
                  ? arch::Orchestration::Hardware
                  : arch::Orchestration::Software);

    util::Table report({"Quantity", "Value"});
    report.addRow({"Workload", spec.str()});
    report.addRow({"Config", runtime::runConfigName(config)});
    report.addRow({"Sockets", std::to_string(sockets) +
                                  " (TP" + std::to_string(tp) + ")"});
    report.addRow({"Graph ops", std::to_string(g.numOps())});
    report.addRow({"FLOPs", util::formatDouble(g.totalFlops() / 1e12, 2) +
                                " TFLOP"});
    report.addRow({"Weights", util::formatBytes(g.weightBytes())});
    report.addRow({"Kernels", std::to_string(prog.kernels.size())});
    report.addRow({"Launches", std::to_string(prog.totalLaunches)});
    report.addRow({"HBM resident/socket",
                   util::formatBytes(prog.hbmResidentBytes)});
    report.addRow({"DDR spill/socket",
                   util::formatBytes(prog.ddrResidentBytes)});
    report.addRow({"Total time", util::formatSeconds(result.seconds())});
    report.addRow({"  launch overhead",
                   util::formatSeconds(result.launchSeconds())});
    report.addRow({"  execution",
                   util::formatSeconds(result.execSeconds())});
    if (spec.phase == models::Phase::Decode) {
        report.addRow({"Tokens/s/user",
                       util::formatDouble(1.0 / result.seconds(), 0)});
    }
    report.print(std::cout);

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        trace.writeJson(out);
        std::cout << "\nwrote " << trace.eventCount()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing or Perfetto)\n";
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &) {
        std::cerr << "error: malformed numeric argument\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
    }
    return 1;
}
