/**
 * @file
 * sn40l_run: command-line driver for the simulator. Compiles and
 * executes one workload and prints a report; optionally writes a
 * Chrome trace-event timeline.
 *
 *   sn40l_run --model llama2-7b --phase decode --seq 2048 --tp 8 \
 *             [--batch 1] [--config fused-ho|fused-so|unfused] \
 *             [--sockets 8] [--trace out.json]
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>

#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/trace.h"
#include "util/table.h"

using namespace sn40l;

namespace {

models::LlmConfig
modelByName(const std::string &name)
{
    using models::LlmConfig;
    static const std::map<std::string, LlmConfig (*)()> zoo = {
        {"llama2-7b", &LlmConfig::llama2_7b},
        {"llama2-13b", &LlmConfig::llama2_13b},
        {"sparsegpt-13b", &LlmConfig::sparseGpt13b},
        {"llama2-70b", &LlmConfig::llama2_70b},
        {"llama3.1-8b", &LlmConfig::llama31_8b},
        {"llama3.1-70b", &LlmConfig::llama31_70b},
        {"llama3.1-405b", &LlmConfig::llama31_405b},
        {"mistral-7b", &LlmConfig::mistral7b},
        {"falcon-40b", &LlmConfig::falcon40b},
        {"bloom-176b", &LlmConfig::bloom176b},
        {"llava1.5-7b", &LlmConfig::llava15_7b},
    };
    auto it = zoo.find(name);
    if (it == zoo.end()) {
        std::cerr << "unknown model '" << name << "'. Available:\n";
        for (const auto &kv : zoo)
            std::cerr << "  " << kv.first << "\n";
        std::exit(1);
    }
    return it->second();
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: sn40l_run --model NAME --phase "
              << "prefill|decode|train [--seq N] [--batch N]\n"
              << "       [--tp N] [--sockets N] [--config "
              << "fused-ho|fused-so|unfused] [--trace FILE]\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "llama2-7b";
    std::string phase_name = "decode";
    std::string config_name = "fused-ho";
    std::string trace_path;
    int seq = 2048, batch = 1, tp = 8, sockets = 8;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--model") model_name = next();
        else if (arg == "--phase") phase_name = next();
        else if (arg == "--seq") seq = std::stoi(next());
        else if (arg == "--batch") batch = std::stoi(next());
        else if (arg == "--tp") tp = std::stoi(next());
        else if (arg == "--sockets") sockets = std::stoi(next());
        else if (arg == "--config") config_name = next();
        else if (arg == "--trace") trace_path = next();
        else usage();
    }

    models::WorkloadSpec spec;
    spec.model = modelByName(model_name);
    spec.seqLen = seq;
    spec.batch = batch;
    spec.tensorParallel = tp;
    if (phase_name == "prefill") spec.phase = models::Phase::Prefill;
    else if (phase_name == "decode") spec.phase = models::Phase::Decode;
    else if (phase_name == "train") spec.phase = models::Phase::Train;
    else usage();

    runtime::RunConfig config;
    if (config_name == "fused-ho") config = runtime::RunConfig::FusedHO;
    else if (config_name == "fused-so")
        config = runtime::RunConfig::FusedSO;
    else if (config_name == "unfused")
        config = runtime::RunConfig::Unfused;
    else usage();

    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(sockets);

    // Compile + run (with optional tracing, mirroring runWorkload).
    compiler::CompileOptions options;
    options.fusion.tensorParallel = tp;
    options.fusion.mode = config == runtime::RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, node_cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    if (!trace_path.empty())
        executor.setTrace(&trace);
    runtime::ExecutionResult result = executor.run(
        prog, config == runtime::RunConfig::FusedHO
                  ? arch::Orchestration::Hardware
                  : arch::Orchestration::Software);

    util::Table report({"Quantity", "Value"});
    report.addRow({"Workload", spec.str()});
    report.addRow({"Config", runtime::runConfigName(config)});
    report.addRow({"Sockets", std::to_string(sockets) +
                                  " (TP" + std::to_string(tp) + ")"});
    report.addRow({"Graph ops", std::to_string(g.numOps())});
    report.addRow({"FLOPs", util::formatDouble(g.totalFlops() / 1e12, 2) +
                                " TFLOP"});
    report.addRow({"Weights", util::formatBytes(g.weightBytes())});
    report.addRow({"Kernels", std::to_string(prog.kernels.size())});
    report.addRow({"Launches", std::to_string(prog.totalLaunches)});
    report.addRow({"HBM resident/socket",
                   util::formatBytes(prog.hbmResidentBytes)});
    report.addRow({"DDR spill/socket",
                   util::formatBytes(prog.ddrResidentBytes)});
    report.addRow({"Total time", util::formatSeconds(result.seconds())});
    report.addRow({"  launch overhead",
                   util::formatSeconds(result.launchSeconds())});
    report.addRow({"  execution",
                   util::formatSeconds(result.execSeconds())});
    if (spec.phase == models::Phase::Decode) {
        report.addRow({"Tokens/s/user",
                       util::formatDouble(1.0 / result.seconds(), 0)});
    }
    report.print(std::cout);

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        trace.writeJson(out);
        std::cout << "\nwrote " << trace.eventCount()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing or Perfetto)\n";
    }
    return 0;
}
