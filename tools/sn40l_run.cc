/**
 * @file
 * sn40l_run: command-line driver for the simulator. Compiles and
 * executes one workload and prints a report; optionally writes a
 * Chrome trace-event timeline.
 *
 *   sn40l_run --model llama2-7b --phase decode --seq 2048 --tp 8 \
 *             [--batch 1] [--config fused-ho|fused-so|unfused] \
 *             [--sockets 8] [--trace out.json]
 *
 * The `serve` subcommand drives the event-driven CoE request-stream
 * scheduler instead and reports tail latency and throughput; expert
 * switches are real DMA transfers on the platform's three-tier
 * memory system:
 *
 *   sn40l_run serve --arrival-rate=8 [--experts 150] [--batch 8] \
 *             [--requests 512] [--scheduler fifo|affinity|both] \
 *             [--routing uniform|zipf|round-robin] [--zipf-s 1.0] \
 *             [--platform sn40l|dgx-a100|dgx-h100] [--closed-loop] \
 *             [--clients 16] [--think 0.0] [--tokens 20] [--seed 1] \
 *             [--prefetch] [--prefetch-depth 4] [--dma-engines 2] \
 *             [--expert-region-gb 96]
 *
 * `sn40l_run serve --help` documents every serve flag.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <vector>

#include "coe/serving.h"
#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/trace.h"
#include "util/table.h"

using namespace sn40l;

namespace {

models::LlmConfig
modelByName(const std::string &name)
{
    using models::LlmConfig;
    static const std::map<std::string, LlmConfig (*)()> zoo = {
        {"llama2-7b", &LlmConfig::llama2_7b},
        {"llama2-13b", &LlmConfig::llama2_13b},
        {"sparsegpt-13b", &LlmConfig::sparseGpt13b},
        {"llama2-70b", &LlmConfig::llama2_70b},
        {"llama3.1-8b", &LlmConfig::llama31_8b},
        {"llama3.1-70b", &LlmConfig::llama31_70b},
        {"llama3.1-405b", &LlmConfig::llama31_405b},
        {"mistral-7b", &LlmConfig::mistral7b},
        {"falcon-40b", &LlmConfig::falcon40b},
        {"bloom-176b", &LlmConfig::bloom176b},
        {"llava1.5-7b", &LlmConfig::llava15_7b},
    };
    auto it = zoo.find(name);
    if (it == zoo.end()) {
        std::cerr << "unknown model '" << name << "'. Available:\n";
        for (const auto &kv : zoo)
            std::cerr << "  " << kv.first << "\n";
        std::exit(1);
    }
    return it->second();
}

void
serveHelp(std::ostream &os)
{
    os << "usage: sn40l_run serve [flags]\n"
       << "\n"
       << "Event-driven CoE request-stream serving: requests arrive, are\n"
       << "continuously batched against the live LRU expert cache, and\n"
       << "every expert switch streams DDR->HBM through the platform's\n"
       << "DMA engines, contending with decode traffic.\n"
       << "\n"
       << "Workload:\n"
       << "  --platform P          sn40l | dgx-a100 | dgx-h100 "
       << "(default sn40l)\n"
       << "  --experts N           experts in the zoo (default 150)\n"
       << "  --batch N             max prompts per batch (default 8)\n"
       << "  --tokens N            output tokens per prompt (default 20)\n"
       << "  --requests N          requests to stream (default 512)\n"
       << "  --routing D           uniform | zipf | round-robin\n"
       << "  --zipf-s S            Zipf skew (requires --routing zipf)\n"
       << "  --seed N              RNG seed (default 1)\n"
       << "\n"
       << "Arrivals:\n"
       << "  --arrival-rate R      open-loop Poisson rate, req/s "
       << "(default 8)\n"
       << "  --closed-loop         fixed client pool instead of Poisson\n"
       << "  --clients N           pool size (requires --closed-loop)\n"
       << "  --think SEC           client think time (requires "
       << "--closed-loop)\n"
       << "\n"
       << "Scheduler:\n"
       << "  --scheduler S         fifo | affinity | both (default both)\n"
       << "\n"
       << "Memory system:\n"
       << "  --prefetch            speculative prefetch: queued requests'\n"
       << "                        experts stream at low DMA priority\n"
       << "  --prefetch-depth N    max outstanding prefetches (requires\n"
       << "                        --prefetch; default 4)\n"
       << "  --dma-engines N       DMA engines streaming experts "
       << "(default 2)\n"
       << "  --expert-region-gb G  HBM expert-region size in GB "
       << "(default:\n"
       << "                        platform HBM minus router/KV reserve)\n";
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: sn40l_run --model NAME --phase "
              << "prefill|decode|train [--seq N] [--batch N]\n"
              << "       [--tp N] [--sockets N] [--config "
              << "fused-ho|fused-so|unfused] [--trace FILE]\n"
              << "   or: sn40l_run serve [flags]  "
              << "(see `sn40l_run serve --help`)\n";
    std::exit(1);
}

[[noreturn]] void
serveError(const std::string &msg)
{
    std::cerr << "error: " << msg << "\n"
              << "run `sn40l_run serve --help` for the flag reference\n";
    std::exit(1);
}

/**
 * Flatten "--flag=value" arguments into "--flag value" so both
 * spellings parse through the same next()-style loop.
 */
std::vector<std::string>
splitEqualsArgs(int argc, char **argv, int first)
{
    std::vector<std::string> out;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            out.push_back(arg.substr(0, eq));
            out.push_back(arg.substr(eq + 1));
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

coe::Platform
platformByName(const std::string &name)
{
    if (name == "sn40l") return coe::Platform::Sn40l;
    if (name == "dgx-a100") return coe::Platform::DgxA100;
    if (name == "dgx-h100") return coe::Platform::DgxH100;
    std::cerr << "unknown platform '" << name
              << "' (expected sn40l, dgx-a100, or dgx-h100)\n";
    std::exit(1);
}

int
runServe(int argc, char **argv)
{
    coe::ServingConfig cfg;
    cfg.mode = coe::ServingMode::EventDriven;
    cfg.batch = 8;
    std::string scheduler_name = "both";

    bool set_arrival_rate = false, set_clients = false, set_think = false;
    bool set_zipf_s = false, set_prefetch_depth = false;

    std::vector<std::string> args = splitEqualsArgs(argc, argv, 2);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                serveError("flag " + arg + " expects a value");
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            serveHelp(std::cout);
            return 0;
        }
        else if (arg == "--platform") cfg.platform = platformByName(next());
        else if (arg == "--experts") cfg.numExperts = std::stoi(next());
        else if (arg == "--batch") cfg.batch = std::stoi(next());
        else if (arg == "--tokens") cfg.outputTokens = std::stoi(next());
        else if (arg == "--requests") cfg.streamRequests = std::stoi(next());
        else if (arg == "--arrival-rate") {
            cfg.arrivalRatePerSec = std::stod(next());
            set_arrival_rate = true;
        }
        else if (arg == "--closed-loop")
            cfg.arrival = coe::ArrivalProcess::ClosedLoop;
        else if (arg == "--clients") {
            cfg.clients = std::stoi(next());
            set_clients = true;
        }
        else if (arg == "--think") {
            cfg.thinkSeconds = std::stod(next());
            set_think = true;
        }
        else if (arg == "--scheduler") scheduler_name = next();
        else if (arg == "--routing")
            cfg.routing = coe::routingDistributionFromName(next());
        else if (arg == "--zipf-s") {
            cfg.zipfS = std::stod(next());
            set_zipf_s = true;
        }
        else if (arg == "--seed") cfg.seed = std::stoull(next());
        else if (arg == "--prefetch") cfg.predictivePrefetch = true;
        else if (arg == "--prefetch-depth") {
            cfg.prefetchDepth = std::stoi(next());
            set_prefetch_depth = true;
        }
        else if (arg == "--dma-engines") cfg.dmaEngines = std::stoi(next());
        else if (arg == "--expert-region-gb") {
            double gb = std::stod(next());
            if (gb <= 0.0)
                serveError("--expert-region-gb must be positive");
            cfg.expertRegionBytes = static_cast<std::int64_t>(gb * 1e9);
        }
        else serveError("unknown serve flag '" + arg + "'");
    }

    // Reject contradictory combinations instead of silently ignoring
    // half of them.
    if (cfg.arrival == coe::ArrivalProcess::ClosedLoop && set_arrival_rate)
        serveError("--arrival-rate is an open-loop parameter; it cannot "
                   "be combined with --closed-loop");
    if (cfg.arrival != coe::ArrivalProcess::ClosedLoop &&
        (set_clients || set_think))
        serveError("--clients/--think only apply to --closed-loop runs");
    if (set_zipf_s && cfg.routing != coe::RoutingDistribution::Zipf)
        serveError("--zipf-s requires --routing zipf");
    if (set_prefetch_depth && !cfg.predictivePrefetch)
        serveError("--prefetch-depth requires --prefetch");
    if (cfg.dmaEngines <= 0)
        serveError("--dma-engines must be at least 1");
    if (cfg.prefetchDepth < 0)
        serveError("--prefetch-depth must be non-negative");

    std::vector<coe::SchedulerPolicy> policies;
    if (scheduler_name == "both") {
        policies = {coe::SchedulerPolicy::Fifo,
                    coe::SchedulerPolicy::ExpertAffinity};
    } else {
        policies = {coe::schedulerPolicyFromName(scheduler_name)};
    }

    std::cout << "CoE request stream on " << coe::platformName(cfg.platform)
              << ": " << cfg.numExperts << " experts, "
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? "open-loop Poisson "
                      : "closed-loop ")
              << (cfg.arrival == coe::ArrivalProcess::Poisson
                      ? util::formatDouble(cfg.arrivalRatePerSec, 1) +
                            " req/s"
                      : std::to_string(cfg.clients) + " clients")
              << ", " << cfg.streamRequests << " requests, max batch "
              << cfg.batch << ", "
              << coe::routingDistributionName(cfg.routing)
              << " routing\n\n";

    util::Table table({"Scheduler", "p50", "p95", "p99", "Throughput",
                       "Tokens/s", "Miss rate", "Miss-stall p95",
                       "Queue depth", "Batch occupancy"});
    std::vector<std::string> prefetch_lines;
    for (coe::SchedulerPolicy policy : policies) {
        cfg.scheduler = policy;
        coe::ServingSimulator sim(cfg);
        coe::ServingResult r = sim.run();
        if (r.oom) {
            table.addRow({coe::schedulerPolicyName(policy), "-", "-", "-",
                          "OUT OF MEMORY"});
            continue;
        }
        const coe::StreamMetrics &m = r.stream;
        if (cfg.predictivePrefetch) {
            prefetch_lines.push_back(
                std::string(coe::schedulerPolicyName(policy)) + ": " +
                std::to_string(m.prefetchesIssued) + " issued, " +
                std::to_string(m.prefetchHits) + " hit by a batch, " +
                std::to_string(m.prefetchesCancelled) +
                " cancelled under eviction pressure");
        }
        table.addRow({coe::schedulerPolicyName(policy),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(m.throughputTokensPerSec, 1),
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      util::formatSeconds(m.p95SwitchStallSeconds),
                      util::formatDouble(m.meanQueueDepth, 1) + " avg / " +
                          util::formatDouble(m.maxQueueDepth, 0) + " max",
                      util::formatDouble(m.meanBatchOccupancy, 2)});
    }
    table.print(std::cout);
    if (!prefetch_lines.empty()) {
        std::cout << "\nSpeculative prefetch:\n";
        for (const std::string &line : prefetch_lines)
            std::cout << "  " << line << "\n";
    }
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServe(argc, argv);

    std::string model_name = "llama2-7b";
    std::string phase_name = "decode";
    std::string config_name = "fused-ho";
    std::string trace_path;
    int seq = 2048, batch = 1, tp = 8, sockets = 8;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--model") model_name = next();
        else if (arg == "--phase") phase_name = next();
        else if (arg == "--seq") seq = std::stoi(next());
        else if (arg == "--batch") batch = std::stoi(next());
        else if (arg == "--tp") tp = std::stoi(next());
        else if (arg == "--sockets") sockets = std::stoi(next());
        else if (arg == "--config") config_name = next();
        else if (arg == "--trace") trace_path = next();
        else usage();
    }

    models::WorkloadSpec spec;
    spec.model = modelByName(model_name);
    spec.seqLen = seq;
    spec.batch = batch;
    spec.tensorParallel = tp;
    if (phase_name == "prefill") spec.phase = models::Phase::Prefill;
    else if (phase_name == "decode") spec.phase = models::Phase::Decode;
    else if (phase_name == "train") spec.phase = models::Phase::Train;
    else usage();

    runtime::RunConfig config;
    if (config_name == "fused-ho") config = runtime::RunConfig::FusedHO;
    else if (config_name == "fused-so")
        config = runtime::RunConfig::FusedSO;
    else if (config_name == "unfused")
        config = runtime::RunConfig::Unfused;
    else usage();

    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::NodeConfig node_cfg = arch::NodeConfig::sn40lNode(sockets);

    // Compile + run (with optional tracing, mirroring runWorkload).
    compiler::CompileOptions options;
    options.fusion.tensorParallel = tp;
    options.fusion.mode = config == runtime::RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;
    compiler::Program prog = compiler::compile(g, node_cfg.chip, options);

    sim::EventQueue eq;
    runtime::RduNode node(eq, node_cfg);
    runtime::Executor executor(node);
    runtime::TraceWriter trace;
    if (!trace_path.empty())
        executor.setTrace(&trace);
    runtime::ExecutionResult result = executor.run(
        prog, config == runtime::RunConfig::FusedHO
                  ? arch::Orchestration::Hardware
                  : arch::Orchestration::Software);

    util::Table report({"Quantity", "Value"});
    report.addRow({"Workload", spec.str()});
    report.addRow({"Config", runtime::runConfigName(config)});
    report.addRow({"Sockets", std::to_string(sockets) +
                                  " (TP" + std::to_string(tp) + ")"});
    report.addRow({"Graph ops", std::to_string(g.numOps())});
    report.addRow({"FLOPs", util::formatDouble(g.totalFlops() / 1e12, 2) +
                                " TFLOP"});
    report.addRow({"Weights", util::formatBytes(g.weightBytes())});
    report.addRow({"Kernels", std::to_string(prog.kernels.size())});
    report.addRow({"Launches", std::to_string(prog.totalLaunches)});
    report.addRow({"HBM resident/socket",
                   util::formatBytes(prog.hbmResidentBytes)});
    report.addRow({"DDR spill/socket",
                   util::formatBytes(prog.ddrResidentBytes)});
    report.addRow({"Total time", util::formatSeconds(result.seconds())});
    report.addRow({"  launch overhead",
                   util::formatSeconds(result.launchSeconds())});
    report.addRow({"  execution",
                   util::formatSeconds(result.execSeconds())});
    if (spec.phase == models::Phase::Decode) {
        report.addRow({"Tokens/s/user",
                       util::formatDouble(1.0 / result.seconds(), 0)});
    }
    report.print(std::cout);

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        trace.writeJson(out);
        std::cout << "\nwrote " << trace.eventCount()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing or Perfetto)\n";
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &) {
        std::cerr << "error: malformed numeric argument\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
    }
    return 1;
}
